"""Tests for cross-problem training batches.

Three layers: the models-stacked trainer (per-model data matrices in
one graph, bitwise-equal to solo training), the cross-problem batcher
driving several engines' ``run_stepwise`` generators, and the
``run_many(cross_batch=N)`` / service plumbing — including the
acceptance guarantee that cross-batched suite runs produce exactly the
invariants sequential solving produces.
"""

import time

import numpy as np
import pytest

from repro.cln.model import GCLN, GCLNConfig, GCLNStack
from repro.cln.train import train_gcln, train_gcln_restarts
from repro.errors import TrainingError
from repro.infer import InferenceConfig, Problem
from repro.infer.runner import STATUS_OK, STATUS_TIMEOUT, run_many
from repro.sampling import normalize_rows

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str, step: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


def _relation_data(seed: int, n: int = 12) -> np.ndarray:
    rng = np.random.default_rng(seed)
    xs = np.arange(1, n + 1, dtype=float) + rng.normal(scale=0.01, size=n)
    return normalize_rows(
        np.stack([np.ones_like(xs), xs, 2 * xs, xs * xs], axis=1)
    )


def _eq_model(seed: int, epochs: int = 300) -> GCLN:
    config = GCLNConfig(n_clauses=3, max_epochs=epochs, dropout_rate=0.2)
    return GCLN(4, config, np.random.default_rng(seed), protected_terms=[0])


# -- models-stacked trainer ---------------------------------------------------


def test_stacked_per_model_data_matches_solo_exactly():
    """Acceptance: R models x R data matrices in one stacked graph
    produce bitwise the parameters solo training produces."""
    seeds = (1, 2, 3)
    datas = [_relation_data(100 + s) for s in seeds]
    batch = [_eq_model(s) for s in seeds]
    solo = [_eq_model(s) for s in seeds]
    outcomes = train_gcln_restarts(batch, datas)
    for outcome, stacked, alone, data in zip(outcomes, batch, solo, datas):
        reference = train_gcln(alone, data)
        assert outcome.error is None
        assert outcome.result.epochs == reference.epochs
        assert outcome.result.final_loss == reference.final_loss
        np.testing.assert_array_equal(
            stacked.unit_weights.data, alone.unit_weights.data
        )
        np.testing.assert_array_equal(
            stacked.and_gates.data, alone.and_gates.data
        )
        np.testing.assert_array_equal(
            stacked.or_gates_stacked.data, alone.or_gates_stacked.data
        )
        np.testing.assert_array_equal(stacked.unit_masks, alone.unit_masks)


def test_stacked_early_stop_is_per_model():
    """Models early-stop at their own epochs and freeze exactly there."""
    seeds = (1, 5, 9)
    datas = [_relation_data(100 + s) for s in seeds]
    batch = [_eq_model(s, epochs=1500) for s in seeds]
    solo = [_eq_model(s, epochs=1500) for s in seeds]
    outcomes = train_gcln_restarts(batch, datas, early_stop_patience=60)
    epochs = set()
    for outcome, stacked, alone, data in zip(outcomes, batch, solo, datas):
        reference = train_gcln(alone, data, early_stop_patience=60)
        assert outcome.result.epochs == reference.epochs
        epochs.add(outcome.result.epochs)
        np.testing.assert_array_equal(
            stacked.unit_weights.data, alone.unit_weights.data
        )
    assert len(epochs) > 1  # they genuinely stopped at different epochs


def test_mixed_shape_matrices_fall_back_to_per_model_leaves():
    datas = [_relation_data(7, n=10), _relation_data(8, n=14)]
    batch = [_eq_model(2, epochs=200), _eq_model(3, epochs=200)]
    solo = [_eq_model(2, epochs=200), _eq_model(3, epochs=200)]
    outcomes = train_gcln_restarts(batch, datas)
    for outcome, stacked, alone, data in zip(outcomes, batch, solo, datas):
        reference = train_gcln(alone, data)
        assert outcome.error is None
        assert outcome.result.epochs == reference.epochs
        np.testing.assert_array_equal(
            stacked.unit_weights.data, alone.unit_weights.data
        )


def test_three_dimensional_batch_form():
    stacked = np.stack([_relation_data(1), _relation_data(2)])
    outcomes = train_gcln_restarts(
        [_eq_model(1, epochs=100), _eq_model(2, epochs=100)], stacked
    )
    assert all(o.error is None for o in outcomes)


def test_matrix_count_must_match_models():
    with pytest.raises(TrainingError, match="matrices"):
        train_gcln_restarts(
            [_eq_model(1), _eq_model(2)], [_relation_data(1)]
        )


def test_bad_data_type_rejected():
    with pytest.raises(TrainingError, match="2-D matrix"):
        train_gcln_restarts([_eq_model(1)], {"not": "data"})


def test_stack_requires_matching_signatures():
    small = _eq_model(1)
    big_config = GCLNConfig(n_clauses=3, max_epochs=300, sigma=0.5)
    big = GCLN(4, big_config, np.random.default_rng(2), protected_terms=[0])
    with pytest.raises(TrainingError, match="stack signature"):
        GCLNStack([small, big])


def test_stack_rebinds_storage_to_views():
    models = [_eq_model(1), _eq_model(2)]
    stack = GCLNStack(models)
    stack.unit_weights.data[0, 0, 0] = 42.0
    assert models[0].unit_weights.data[0, 0] == 42.0
    assert models[0].units_flat[0].weight.data[0] == 42.0
    models[1].and_gates.data[:] = 0.25
    assert np.all(stack.and_gates.data[1] == 0.25)


# -- run_many(cross_batch=N) --------------------------------------------------


def test_cross_batch_matches_sequential_invariants():
    """Acceptance: cross-batched suite run == sequential run, per
    problem, invariant for invariant."""
    names = [("a", 2), ("b", 3), ("c", 5)]
    config = InferenceConfig(max_epochs=150, dropout_schedule=(0.6, 0.7))
    sequential = run_many(
        [tiny_problem(n, s) for n, s in names], config, jobs=1
    )
    crossed = run_many(
        [tiny_problem(n, s) for n, s in names], config, cross_batch=4
    )
    for seq, cross in zip(sequential, crossed):
        assert seq.status == cross.status == STATUS_OK
        assert seq.solved == cross.solved
        assert seq.result.attempts == cross.result.attempts
        seq_loops = seq.result.to_dict()["loops"]
        cross_loops = cross.result.to_dict()["loops"]
        assert [l["invariant"] for l in seq_loops] == [
            l["invariant"] for l in cross_loops
        ]
        assert [l["sound_atoms"] for l in seq_loops] == [
            l["sound_atoms"] for l in cross_loops
        ]


@pytest.mark.slow
def test_cross_batch_matches_sequential_on_nla_suite():
    """Acceptance on real benchmarks: a cross-batched nla subset yields
    exactly the invariants sequential solving yields."""
    from repro.bench import nla_problem

    names = ["ps2", "ps3", "sqrt1"]
    config = InferenceConfig(max_epochs=400)
    sequential = run_many([nla_problem(n) for n in names], config, jobs=1)
    crossed = run_many(
        [nla_problem(n) for n in names], config, cross_batch=4
    )
    for seq, cross in zip(sequential, crossed):
        assert seq.status == cross.status == STATUS_OK
        assert seq.solved == cross.solved
        assert seq.result.attempts == cross.result.attempts
        assert [l["invariant"] for l in seq.result.to_dict()["loops"]] == [
            l["invariant"] for l in cross.result.to_dict()["loops"]
        ]


def test_cross_batch_groups_same_shape_problems(monkeypatch):
    """Same-shape first attempts from different problems train in one
    stacked call with per-model matrices."""
    import repro.infer.batcher as batcher_mod

    calls = []
    original = batcher_mod.train_gcln_restarts

    def spy(models, data, *args, **kwargs):
        calls.append((len(models), isinstance(data, list)))
        return original(models, data, *args, **kwargs)

    monkeypatch.setattr(batcher_mod, "train_gcln_restarts", spy)
    problems = [tiny_problem(f"p{k}", k + 2) for k in range(3)]
    records = run_many(
        problems,
        InferenceConfig(max_epochs=80, dropout_schedule=(0.6,)),
        cross_batch=8,
    )
    assert all(r.status == STATUS_OK for r in records)
    assert any(n > 1 and per_model for n, per_model in calls), calls


def test_cross_batch_contains_training_crash_to_one_record(monkeypatch):
    """A training failure raised in the coordinator frame (not inside
    an engine generator) becomes one error record — parity with
    ``_run_one`` — instead of aborting the whole suite."""
    import repro.infer.batcher as batcher_mod

    original = batcher_mod.execute_train_request
    failed = []

    def explode_once(request):
        if not failed:
            failed.append(True)
            raise ValueError("degenerate data matrix")
        return original(request)

    monkeypatch.setattr(batcher_mod, "execute_train_request", explode_once)
    # First attempts run alone (singles path), so the first problem's
    # first training call is the one that explodes.
    records = run_many(
        [tiny_problem("boom"), tiny_problem("fine", 2)],
        FAST_CONFIG,
        cross_batch=4,
    )
    assert [r.name for r in records] == ["boom", "fine"]
    assert records[0].status == "error"
    assert "degenerate data matrix" in records[0].error
    assert records[1].status == STATUS_OK


def test_cross_batch_stacked_crash_falls_back_per_member(monkeypatch):
    """A non-TrainingError crash in the stacked call retries members
    inline instead of killing the suite."""
    import repro.infer.batcher as batcher_mod

    def always_explode(models, data, *args, **kwargs):
        raise RuntimeError("stacked call blew up")

    monkeypatch.setattr(batcher_mod, "train_gcln_restarts", always_explode)
    # Same config as the grouping test above, so retries do form a
    # stacked group and the explode path is actually exercised.
    records = run_many(
        [tiny_problem("fa", 2), tiny_problem("fb", 3), tiny_problem("fc", 4)],
        InferenceConfig(max_epochs=80, dropout_schedule=(0.6,)),
        cross_batch=8,
    )
    # The inline fallback (execute_train_request) still works, so both
    # problems complete normally.
    assert all(r.status == STATUS_OK for r in records)


def test_cross_batch_soft_timeout(monkeypatch):
    """The soft budget retires over-budget problems between rounds."""
    import repro.infer.batcher as batcher_mod

    original_execute = batcher_mod.execute_train_request
    original_restarts = batcher_mod.train_gcln_restarts

    def slow_execute(request):
        time.sleep(0.4)
        return original_execute(request)

    def slow_restarts(models, data, *args, **kwargs):
        time.sleep(0.4)
        return original_restarts(models, data, *args, **kwargs)

    monkeypatch.setattr(batcher_mod, "execute_train_request", slow_execute)
    monkeypatch.setattr(batcher_mod, "train_gcln_restarts", slow_restarts)

    def never_solved(name: str, step: int) -> Problem:
        problem = tiny_problem(name, step)
        # Unimplied ground truth: the scheduler keeps retrying, so the
        # budget check between rounds gets a chance to fire.
        return Problem(
            name=problem.name,
            source=problem.source,
            train_inputs=problem.train_inputs,
            max_degree=1,
            ground_truth={0: ["x == 99 * i + 7"]},
        )

    config = InferenceConfig(max_epochs=60, dropout_schedule=(0.6, 0.7, 0.5))
    problems = [never_solved("slowa", 2), never_solved("slowb", 3)]
    records = run_many(problems, config, cross_batch=4, timeout_seconds=0.2)
    assert all(r.status == STATUS_TIMEOUT for r in records)
    assert all("timed out" in r.error for r in records)
    assert all(r.runtime_seconds < 30 for r in records)


def test_cross_batch_isolates_problem_errors():
    bad = Problem(
        name="noloop",
        source="program noloop;\ninput n;\nx = n;",
        train_inputs=[{"n": 1}],
    )
    records = run_many(
        [bad, tiny_problem("fine", 2)], FAST_CONFIG, cross_batch=2
    )
    assert records[0].status == "error"
    assert "InferenceError" in records[0].error
    assert records[1].status == STATUS_OK


def test_cross_batch_validation():
    problems = [tiny_problem("x")]
    with pytest.raises(ValueError, match="cross_batch"):
        run_many(problems, FAST_CONFIG, cross_batch=0)
    with pytest.raises(ValueError, match="jobs"):
        run_many(problems, FAST_CONFIG, cross_batch=2, jobs=2)
    with pytest.raises(ValueError, match="gcln"):
        run_many(
            problems, FAST_CONFIG, cross_batch=2, solver="guess_and_check"
        )
    with pytest.raises(ValueError, match="solve_fn"):
        run_many(
            problems,
            FAST_CONFIG,
            cross_batch=2,
            solve_fn=lambda p, c: None,
        )


def test_service_solve_many_cross_batch_emits_events():
    from repro.api import InvariantService, ProblemSolved

    service = InvariantService(FAST_CONFIG)
    solved_events = []
    service.subscribe(solved_events.append, kinds=(ProblemSolved,))
    records = service.solve_many(
        [tiny_problem("sa", 2), tiny_problem("sb", 3)], cross_batch=2
    )
    assert [r.status for r in records] == [STATUS_OK, STATUS_OK]
    assert len(solved_events) == 2
    assert {e.problem for e in solved_events} == {"sa", "sb"}
