"""Tests for the baseline systems."""

import numpy as np

from repro.baselines import (
    enumerative_search,
    guess_and_check_equalities,
    octahedral_inequalities,
)
from repro.baselines.plain_cln import PlainCLN, train_plain_cln
from repro.sampling import build_term_basis, evaluate_terms, normalize_rows
from tests.test_polynomial import P


def line_states(n=15):
    return [{"x": i, "y": 2 * i + 1} for i in range(n)]


def test_guess_and_check_finds_linear_relation():
    basis = build_term_basis(["x", "y"], 1)
    atoms = guess_and_check_equalities(line_states(), basis)
    assert any(a.poly in (P("y - 2*x - 1"), P("2*x - y + 1")) for a in atoms)


def test_guess_and_check_finds_quadratic(sqrt1_data):
    states, basis, _raw, _data = sqrt1_data
    atoms = guess_and_check_equalities(states, basis)
    # The nullspace spans the invariant ideal restricted to the basis.
    from repro.poly.reduce import is_implied_equality

    target = P("t - 2*a - 1")
    assert is_implied_equality(target, [a.poly for a in atoms])


def test_guess_and_check_no_relations():
    rng = np.random.default_rng(0)
    states = [
        {"x": int(a), "y": int(b)}
        for a, b in rng.integers(-50, 50, size=(30, 2))
    ]
    basis = build_term_basis(["x", "y"], 1)
    atoms = guess_and_check_equalities(states, basis)
    assert atoms == []


def test_octahedral_bounds_tight():
    states = [{"x": i, "y": 10 - i} for i in range(11)]
    atoms = octahedral_inequalities(states, ["x", "y"])
    rendered = {str(a) for a in atoms}
    # x + y <= 10 appears as 10 - x - y >= 0 and is tight.
    assert any("10" in s and ">= 0" in s for s in rendered)
    from fractions import Fraction

    for atom in atoms:
        values = [
            atom.poly.evaluate({k: Fraction(v) for k, v in s.items()})
            for s in states
        ]
        assert min(values) == 0  # tight by construction
        assert all(v >= 0 for v in values)


def test_octahedral_cannot_express_nonlinear(sqrt1_data):
    """NumInv's octagon domain misses n >= a^2 (§6.1 of the paper)."""
    states, _basis, _raw, _data = sqrt1_data
    atoms = octahedral_inequalities(states, ["a", "s", "t", "n"])
    assert all(a.poly.degree <= 1 for a in atoms)


def test_enumerative_finds_small_invariant():
    basis = build_term_basis(["x", "y"], 1)
    atoms, examined, exhausted = enumerative_search(
        line_states(), basis, budget=50_000
    )
    assert not exhausted
    assert any(a.poly in (P("y - 2*x - 1"), P("2*x - y + 1")) for a in atoms)


def test_enumerative_budget_exhaustion(sqrt1_data):
    states, basis, _raw, _data = sqrt1_data
    atoms, examined, exhausted = enumerative_search(
        states, basis, budget=500
    )
    assert exhausted and examined == 500


def test_plain_cln_can_converge(rng):
    states = line_states()
    basis = build_term_basis(["x", "y"], 1)
    data = normalize_rows(evaluate_terms(states, basis))
    best: list = []
    # Stability is the point: some seeds converge, some do not; over a
    # few seeds at least one should find the invariant.
    for seed in range(3):
        model = PlainCLN(len(basis), 2, np.random.default_rng(seed))
        atoms = train_plain_cln(model, data, basis, states, max_epochs=800)
        best.extend(atoms)
        if atoms:
            break
    assert any(a.poly in (P("y - 2*x - 1"), P("2*x - y + 1")) for a in best)


def test_plain_cln_disjunction_mode(rng):
    model = PlainCLN(3, 2, rng, disjunction=True)
    from repro.autodiff import Tensor

    out = model.forward(Tensor(np.zeros((4, 3))))
    assert out.shape == (4,)
