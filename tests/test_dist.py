"""Tests for the distributed runner: queue, worker, coordinator."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.dist import (
    QueueError,
    Worker,
    WorkQueue,
    config_from_dict,
    config_to_dict,
    enqueue_suite,
    merge_payload,
    problem_from_dict,
    problem_to_dict,
    run_distributed,
)
from repro.dist.wire import item_for_problem, resolve_item_problem
from repro.dist.worker import worker_main
from repro.infer import InferenceConfig, Problem
from repro.infer.runner import STATUS_OK, run_many

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str, step: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


def make_item(item_id: str, index: int = 0) -> dict:
    return {"id": item_id, "index": index, "name": item_id, "problem": {}}


def normalized(record) -> dict:
    """A record's wire dict minus timing/host-dependent fields."""
    data = record.to_dict()
    data.pop("runtime_seconds")
    if data["result"] is not None:
        data["result"].pop("runtime_seconds")
        data["result"].pop("stage_timings")
        data["result"].pop("cache_stats")
    return data


# -- queue mechanics -----------------------------------------------------------


def test_queue_claim_is_exclusive_and_ordered(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0001-b", 1), make_item("0000-a", 0)])
    first = queue.claim("w1", limit=1)
    assert [i.id for i in first] == ["0000-a"]  # sorted by id
    second = queue.claim("w2", limit=5)
    assert [i.id for i in second] == ["0001-b"]  # w1's claim not visible
    assert queue.claim("w3") == []
    assert queue.counts()["claimed"] == 2
    assert first[0].data["claimed_by"] == "w1"


def test_queue_enqueue_skips_known_ids(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    assert queue.enqueue([make_item("0000-a")]) == (1, 0)
    assert queue.enqueue([make_item("0000-a")]) == (0, 1)  # pending
    queue.claim("w1")
    assert queue.enqueue([make_item("0000-a")]) == (0, 1)  # claimed
    queue.ack("0000-a", {"record": None}, "w1")
    assert queue.enqueue([make_item("0000-a")]) == (0, 1)  # journaled/done


def test_queue_rejects_bad_ids_and_limits(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    with pytest.raises(QueueError):
        queue.enqueue([{"index": 0}])
    with pytest.raises(QueueError):
        queue.enqueue([make_item("../escape")])
    with pytest.raises(QueueError):
        queue.claim("w", limit=0)
    with pytest.raises(QueueError):
        WorkQueue.create(tmp_path / "q2", lease_seconds=0)


def test_queue_open_requires_existing_queue(tmp_path):
    with pytest.raises(QueueError, match="enqueue"):
        WorkQueue.open(tmp_path / "nothing")
    WorkQueue.create(tmp_path / "q")
    assert WorkQueue.open(tmp_path / "q").counts()["pending"] == 0


def test_lease_expiry_reclaims_abandoned_item(tmp_path):
    """An item claimed by a crashed worker comes back after its lease."""
    queue = WorkQueue.create(tmp_path / "q", lease_seconds=0.2)
    queue.enqueue([make_item("0000-a")])
    assert queue.claim("crashed")  # claim, then "crash" (never ack)
    assert queue.claim("other") == []  # lease still live
    time.sleep(0.3)
    reclaimed = queue.claim("other")
    assert [i.id for i in reclaimed] == ["0000-a"]
    assert reclaimed[0].data["claimed_by"] == "other"


def test_lease_clock_starts_at_claim_not_enqueue(tmp_path):
    """An item that sat in pending longer than the lease must not look
    instantly expired once claimed (the rename keeps the old mtime)."""
    queue = WorkQueue.create(tmp_path / "q", lease_seconds=0.3)
    queue.enqueue([make_item("0000-a")])
    time.sleep(0.4)  # older than the lease while still pending
    assert [i.id for i in queue.claim("w1")] == ["0000-a"]
    assert queue.claim("w2") == []  # fresh lease; not reapable yet
    time.sleep(0.4)
    assert [i.id for i in queue.claim("w2")] == ["0000-a"]  # now it is


def test_renew_extends_lease(tmp_path):
    queue = WorkQueue.create(tmp_path / "q", lease_seconds=0.4)
    queue.enqueue([make_item("0000-a")])
    queue.claim("w1")
    for _ in range(3):
        time.sleep(0.25)
        assert queue.renew("0000-a")  # keep-alive beats the 0.4s lease
        assert queue.claim("w2") == []
    assert queue.renew("missing") is False


def test_release_returns_item_to_pending(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0000-a")])
    queue.claim("w1")
    assert queue.release("0000-a")
    assert [i.id for i in queue.claim("w2")] == ["0000-a"]
    assert queue.release("missing") is False


def test_double_ack_is_idempotent(tmp_path):
    """Acking twice (e.g. after a lease-expiry re-claim raced the
    original worker) journals exactly one entry."""
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0000-a")])
    queue.claim("w1")
    assert queue.ack("0000-a", {"record": {"name": "a"}}, "w1") is True
    assert queue.ack("0000-a", {"record": {"name": "a"}}, "w2") is False
    assert len(queue.journal_entries()) == 1
    assert queue.unfinished() == 0


def test_ack_after_lost_lease_still_marks_done(tmp_path):
    """A worker that finishes after its lease expired (claim re-taken)
    still journals; the re-claimer's later ack is then a no-op."""
    queue = WorkQueue.create(tmp_path / "q", lease_seconds=0.1)
    queue.enqueue([make_item("0000-a")])
    queue.claim("slow")
    time.sleep(0.2)
    queue.claim("fast")  # re-claims the expired item
    assert queue.ack("0000-a", {"record": {"who": "slow"}}, "slow") is True
    assert queue.ack("0000-a", {"record": {"who": "fast"}}, "fast") is False
    entries = queue.journal_entries()
    assert len(entries) == 1 and entries[0]["worker"] == "slow"


def test_racing_acks_journal_exactly_once(tmp_path):
    """The ack gate is an atomic rename: of many racing ackers for one
    item, exactly one journals, no matter how the lease bounced."""
    queue = WorkQueue.create(tmp_path / "q", lease_seconds=0.1)
    queue.enqueue([make_item("0000-a")])
    queue.claim("a")
    time.sleep(0.15)
    queue.claim("b")  # re-claim after expiry; both now "hold" the item
    results = [
        queue.ack("0000-a", {"record": {"who": w}}, w) for w in ("a", "b", "c")
    ]
    assert results == [True, False, False]
    assert len(queue.journal_entries()) == 1


def test_append_journal_dedups_by_id_under_lock(tmp_path):
    """The journal itself refuses a second line for an id, so even two
    ackers that each won a rename on different incarnations of the item
    file (a resurrected-claim race) cannot double-journal."""
    queue = WorkQueue.create(tmp_path / "q")
    assert queue._append_journal({"id": "0000-a", "payload": {}}) is True
    assert queue._append_journal({"id": "0000-a", "payload": {}}) is False
    # A different id sharing a prefix is not confused with it.
    assert queue._append_journal({"id": "0000-ab", "payload": {}}) is True
    assert [e["id"] for e in queue.journal_entries()] == ["0000-a", "0000-ab"]


def test_done_marker_without_journal_is_rerunnable(tmp_path):
    """A worker that dies between winning the ack rename and appending
    the journal leaves a done/ marker with no record; the item must be
    re-enqueueable so the record is not lost forever."""
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0000-a")])
    queue.claim("doomed")
    # Simulate the crash window: marker renamed into place, no journal.
    os.rename(
        queue.claimed_dir / "0000-a.json", queue.done_dir / "0000-a.json"
    )
    assert queue.journal_entries() == []
    assert queue.enqueue([make_item("0000-a")]) == (1, 0)  # re-runnable
    queue.claim("retry")
    assert queue.ack("0000-a", {"record": {"ok": True}}, "retry") is True
    assert [e["worker"] for e in queue.journal_entries()] == ["retry"]
    # Now it is journaled, so a further enqueue dedups again.
    assert queue.enqueue([make_item("0000-a")]) == (0, 1)


def test_append_heals_torn_journal_tail(tmp_path):
    """An ack that lands after a crashed appender must not fuse its
    line with the torn tail into mid-file corruption."""
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0000-a"), make_item("0001-b", 1)])
    queue.claim("w", limit=2)
    with open(queue.journal_path, "ab") as handle:
        handle.write(b'{"id": "0000-a", "worker": "w", "payl')  # torn
    queue.ack("0001-b", {"record": {"name": "b"}}, "w")  # heals, appends
    entries = queue.journal_entries()  # must not raise "corrupt journal"
    assert [e["id"] for e in entries] == ["0001-b"]


def test_corrupt_trailing_journal_line_is_truncated(tmp_path):
    """A crash mid-append leaves a partial last line; reads drop it and
    repair the file instead of dying."""
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue([make_item("0000-a"), make_item("0001-b", 1)])
    queue.claim("w1", limit=2)
    queue.ack("0000-a", {"record": {"name": "a"}}, "w1")
    with open(queue.journal_path, "ab") as handle:
        handle.write(b'{"id": "0001-b", "worker": "w1", "payl')  # torn write
    entries = queue.journal_entries()
    assert [e["id"] for e in entries] == ["0000-a"]
    # The file was repaired: a fresh append parses cleanly again.
    queue.ack("0001-b", {"record": {"name": "b"}}, "w1")
    assert [e["id"] for e in queue.journal_entries()] == ["0000-a", "0001-b"]


def test_corrupt_middle_journal_line_raises(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    with open(queue.journal_path, "wb") as handle:
        handle.write(b'{"id": "torn\n{"id": "0001-b", "payload": {}}\n')
    with pytest.raises(QueueError, match="corrupt journal"):
        queue.journal_entries()


def test_create_preserves_existing_lease(tmp_path):
    """Re-opening a queue via create() (the coordinator resume path)
    must not reset a custom lease back to the default."""
    WorkQueue.create(tmp_path / "q", lease_seconds=7.5)
    reopened = WorkQueue.create(tmp_path / "q", meta={"solver": "gcln"})
    assert reopened.lease_seconds == 7.5
    explicit = WorkQueue.create(tmp_path / "q", lease_seconds=9.0)
    assert explicit.lease_seconds == 9.0


# -- wire formats --------------------------------------------------------------


def test_problem_round_trips_through_json():
    from fractions import Fraction

    from repro.sampling.termgen import ExternalTerm

    problem = Problem(
        name="rt",
        source="program rt;\ninput n;\nwhile (n > 0) { n = n - 1; }",
        train_inputs=[{"n": 3}, {"n": Fraction(7, 2)}],
        check_inputs=[{"n": 9}],
        max_degree=3,
        variables={0: ["n"]},
        externals=[ExternalTerm(func="gcd", args=("a", "b"))],
        learn_inequalities=True,
        fractional=True,
        fractional_vars=["n"],
        ground_truth={0: ["n >= 0"]},
        max_states=50,
    )
    data = json.loads(json.dumps(problem_to_dict(problem)))
    rebuilt = problem_from_dict(data)
    assert rebuilt == problem


def test_config_round_trips_through_json():
    config = InferenceConfig(
        max_epochs=123, dropout_schedule=(0.5, 0.4), seeds=(9,)
    )
    config.gcln.n_clauses = 4
    data = json.loads(json.dumps(config_to_dict(config)))
    rebuilt = config_from_dict(data)
    assert rebuilt == config
    assert rebuilt.dropout_schedule == (0.5, 0.4)
    assert rebuilt.gcln.n_clauses == 4


def test_suite_items_resolve_from_registry():
    from repro.bench import nla_problem

    item = item_for_problem(nla_problem("ps2"), 3, suite="nla")
    # NNNN-name-ffffffff: input index, name, canonical fingerprint prefix.
    assert item["id"].startswith("0003-ps2-")
    assert len(item["id"]) == len("0003-ps2-") + 8
    assert item["fingerprint"].startswith(item["id"].rsplit("-", 1)[1])
    assert resolve_item_problem(item) == nla_problem("ps2")
    # Same problem + settings → same id (what makes resume dedup work);
    # different solver or config → different id (stale-resume guard).
    assert item_for_problem(nla_problem("ps2"), 3, suite="nla")["id"] == item["id"]
    other = item_for_problem(nla_problem("ps2"), 3, suite="nla", solver="numinv")
    assert other["id"] != item["id"]


def test_inline_items_resolve_without_registry():
    problem = tiny_problem("adhoc")
    item = item_for_problem(problem, 0)
    rebuilt = resolve_item_problem(json.loads(json.dumps(item)))
    assert rebuilt == problem


def test_record_round_trips_through_wire():
    from repro.infer.runner import ProblemRecord

    [record] = run_many([tiny_problem("wire")], FAST_CONFIG)
    rebuilt = ProblemRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert rebuilt.name == record.name
    assert rebuilt.solved == record.solved
    assert rebuilt.result.loops[0].invariant == record.result.loops[0].invariant
    assert rebuilt.to_dict() == record.to_dict()


# -- worker --------------------------------------------------------------------


def test_worker_drains_queue_and_journals_records(tmp_path):
    queue = WorkQueue.create(
        tmp_path / "q",
        meta={"solver": "gcln", "config": config_to_dict(FAST_CONFIG)},
    )
    problems = [tiny_problem("wa"), tiny_problem("wb", step=2)]
    queue.enqueue([item_for_problem(p, i) for i, p in enumerate(problems)])
    seen = []
    worker = Worker(queue, worker_id="t", progress=lambda r: seen.append(r.name))
    assert worker.run() == 2
    assert sorted(seen) == ["wa", "wb"]
    assert queue.unfinished() == 0
    entries = queue.journal_entries()
    assert len(entries) == 2
    assert all(e["worker"] == "t" for e in entries)
    assert all(e["payload"]["record"]["status"] == STATUS_OK for e in entries)


def test_worker_acks_unresolvable_items_as_errors(tmp_path):
    queue = WorkQueue.create(tmp_path / "q")
    queue.enqueue(
        [{"id": "0000-bad", "index": 0, "name": "bad",
          "problem": {"kind": "suite", "suite": "nla", "name": "nosuch"}}]
    )
    worker = Worker(queue, worker_id="t")
    assert worker.run() == 1
    [entry] = queue.journal_entries()
    record = entry["payload"]["record"]
    assert record["status"] == "error"
    assert "cannot resolve" in record["error"]
    assert queue.unfinished() == 0  # a bad item must not wedge the queue


def test_worker_respects_max_items(tmp_path):
    queue = WorkQueue.create(
        tmp_path / "q", meta={"config": config_to_dict(FAST_CONFIG)}
    )
    problems = [tiny_problem("ma"), tiny_problem("mb")]
    queue.enqueue([item_for_problem(p, i) for i, p in enumerate(problems)])
    assert Worker(queue, worker_id="t").run(max_items=1) == 1
    assert queue.counts()["pending"] == 1


def test_worker_cross_batches_within_claim(tmp_path):
    """A queue with cross_batch > 1 makes workers claim item batches
    and train them stacked — with the same invariants as sequential."""
    problems = [tiny_problem("xa"), tiny_problem("xb", 2)]
    queue = WorkQueue.create(
        tmp_path / "q",
        meta={"config": config_to_dict(FAST_CONFIG), "cross_batch": 2},
    )
    queue.enqueue([item_for_problem(p, i) for i, p in enumerate(problems)])
    worker = Worker(queue, worker_id="t")
    assert worker.batch_size == 2  # defaults to the cross-batch width
    assert worker.run() == 2
    sequential = run_many(problems, FAST_CONFIG)
    journaled = {
        e["payload"]["record"]["name"]: e["payload"]["record"]
        for e in queue.journal_entries()
    }
    for record in sequential:
        got = journaled[record.name]
        assert got["status"] == STATUS_OK
        assert got["solved"] == record.solved
        assert (
            got["result"]["loops"][0]["invariant"]
            == record.result.loops[0].invariant
        )


def test_worker_main_entry_point(tmp_path):
    queue = WorkQueue.create(
        tmp_path / "q", meta={"config": config_to_dict(FAST_CONFIG)}
    )
    queue.enqueue([item_for_problem(tiny_problem("wm"), 0)])
    assert worker_main(str(tmp_path / "q"), worker_id="wm") == 1
    [journaled] = queue.journaled_ids()
    assert journaled.startswith("0000-wm-")


# -- coordinator / run_many(workers=N) ----------------------------------------


def test_two_workers_match_sequential_run(tmp_path):
    """The acceptance bar: two workers draining one queue produce the
    exact records (modulo timing fields) of a sequential run."""
    problems = [tiny_problem("eq1"), tiny_problem("eq2", 2), tiny_problem("eq3", 3)]
    sequential = run_many(problems, FAST_CONFIG, jobs=1)
    distributed = run_many(
        problems, FAST_CONFIG, workers=2,
        queue_dir=str(tmp_path / "q"), cache_dir=str(tmp_path / "spill"),
    )
    assert [r.name for r in distributed] == [r.name for r in sequential]
    assert [normalized(r) for r in distributed] == [
        normalized(r) for r in sequential
    ]
    # Both workers share one journal; every item acked exactly once.
    queue = WorkQueue.open(tmp_path / "q")
    journaled = sorted(queue.journaled_ids())
    assert len(journaled) == 3
    for item_id, prefix in zip(journaled, ["0000-eq1-", "0001-eq2-", "0002-eq3-"]):
        assert item_id.startswith(prefix)


def test_distributed_resume_skips_journaled_records(tmp_path):
    """Re-running the coordinator on a half-finished queue only solves
    the missing items."""
    problems = [tiny_problem("ra"), tiny_problem("rb", 2)]
    queue = WorkQueue.create(
        tmp_path / "q", meta={"config": config_to_dict(FAST_CONFIG)}
    )
    # Same config as the coordinator below: item ids embed the
    # (problem, solver, config) fingerprint, so resume only dedups when
    # the settings match.
    queue.enqueue(
        [item_for_problem(p, i, config=FAST_CONFIG) for i, p in enumerate(problems)]
    )
    Worker(queue, worker_id="first").run(max_items=1)  # half-finish
    assert queue.counts()["journaled"] == 1

    solved_by_second_run = []
    records = run_distributed(
        problems,
        FAST_CONFIG,
        workers=1,
        queue_dir=str(tmp_path / "q"),
        progress=lambda r: solved_by_second_run.append(r.name),
    )
    assert [r.name for r in records] == ["ra", "rb"]
    assert all(r.status == STATUS_OK for r in records)
    # Only one new journal entry was added; the first run's record was
    # merged, not re-solved.
    entries = queue.journal_entries()
    assert len(entries) == 2
    assert {e["worker"] for e in entries} == {"first", "local-0"}
    assert sorted(solved_by_second_run) == ["ra", "rb"]  # both reported


def test_coordinator_finishes_after_worker_sigkill(tmp_path):
    """SIGKILL-ing a worker mid-run leaves a resumable queue: the next
    coordinator run reaps the orphaned claim and completes the suite."""
    queue = WorkQueue.create(
        tmp_path / "q",
        meta={"config": config_to_dict(FAST_CONFIG)},
        lease_seconds=0.5,
    )
    problems = [tiny_problem("ka"), tiny_problem("kb", 2)]
    queue.enqueue(
        [item_for_problem(p, i, config=FAST_CONFIG) for i, p in enumerate(problems)]
    )

    # A worker that claims an item and is killed before acking.
    claimed = queue.claim("doomed", limit=1)
    assert len(claimed) == 1 and claimed[0].id.startswith("0000-ka-")

    process = multiprocessing.get_context().Process(
        target=worker_main, args=(str(tmp_path / "q"),),
        kwargs={"worker_id": "victim", "poll_seconds": 0.05},
    )
    process.start()
    try:
        deadline = time.time() + 30
        while queue.counts()["journaled"] < 1 and time.time() < deadline:
            time.sleep(0.05)
        try:
            os.kill(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # already exited; the queue is drained either way
    finally:
        process.join()
    assert queue.counts()["journaled"] >= 1  # victim finished 'kb' first

    records = run_distributed(
        problems, FAST_CONFIG, workers=2, queue_dir=str(tmp_path / "q")
    )
    assert [r.name for r in records] == ["ka", "kb"]
    assert all(r.status == STATUS_OK for r in records)
    # No item was journaled twice despite the crash + re-claim.
    ids = sorted(e["id"] for e in queue.journal_entries())
    assert len(ids) == 2 and len(set(ids)) == 2
    assert ids[0].startswith("0000-ka-") and ids[1].startswith("0001-kb-")


def test_worker_stop_request_acks_current_and_releases_rest(tmp_path):
    """A graceful stop finishes the in-flight item, releases the rest of
    the claim batch back to pending, and returns normally."""
    queue = WorkQueue.create(
        tmp_path / "q", meta={"config": config_to_dict(FAST_CONFIG)}
    )
    problems = [tiny_problem("ga"), tiny_problem("gb", 2), tiny_problem("gc", 3)]
    queue.enqueue(
        [item_for_problem(p, i, config=FAST_CONFIG) for i, p in enumerate(problems)]
    )
    worker = Worker(queue, worker_id="stopper", batch_size=3)
    worker.progress = lambda record: worker.request_stop()  # stop after #1
    processed = worker.run()
    assert processed == 1
    counts = queue.counts()
    # the two unstarted items went straight back to pending — not
    # stranded in claimed/ waiting for a lease to expire
    assert counts == {"pending": 2, "claimed": 0, "done": 1, "journaled": 1}
    assert queue.journal_entries()[0]["id"].startswith("0000-ga-")

    # a resumed drain picks them up immediately (lease is 300s — finishing
    # fast proves nothing waited on expiry)
    finisher = Worker(queue, worker_id="finisher")
    assert finisher.run() == 2
    assert queue.unfinished() == 0


def test_worker_sigterm_exits_cleanly_without_stranding_claims(tmp_path):
    """SIGTERM mid-drain: exit code 0, nothing left in claimed/, and the
    remaining items resume with no lease-timeout wait."""
    queue = WorkQueue.create(
        tmp_path / "q", meta={"config": config_to_dict(FAST_CONFIG)}
    )  # default 300s lease: any post-TERM progress proves no expiry wait
    problems = [tiny_problem("ta"), tiny_problem("tb", 2), tiny_problem("tc", 3)]
    queue.enqueue(
        [item_for_problem(p, i, config=FAST_CONFIG) for i, p in enumerate(problems)]
    )
    process = multiprocessing.get_context().Process(
        target=worker_main, args=(str(tmp_path / "q"),),
        kwargs={"worker_id": "termed", "batch_size": 3, "poll_seconds": 0.05},
    )
    start = time.time()
    process.start()
    try:
        deadline = time.time() + 30
        while queue.counts()["journaled"] < 1 and time.time() < deadline:
            time.sleep(0.02)
        os.kill(process.pid, signal.SIGTERM)
    except ProcessLookupError:
        pass  # drained everything before the signal landed
    finally:
        process.join(timeout=60)
    assert process.exitcode == 0  # graceful, not signal death (-15)
    assert queue.counts()["claimed"] == 0  # nothing stranded on a lease

    # resume completes the suite well inside the 300s lease window
    finisher = Worker(queue, worker_id="resume")
    finisher.run()
    assert queue.unfinished() == 0
    assert queue.counts()["journaled"] == 3
    assert time.time() - start < 120  # nowhere near a lease expiry


def test_merge_payload_matches_run_all_shape(tmp_path):
    problems = [tiny_problem("pa"), tiny_problem("pb", 2)]
    run_many(problems, FAST_CONFIG, workers=1, queue_dir=str(tmp_path / "q"))
    payload = merge_payload(WorkQueue.open(tmp_path / "q"))
    assert set(payload) == {
        "suite", "solver", "jobs", "cross_batch", "timeout_seconds",
        "summary", "records",
    }
    assert payload["summary"]["problems"] == 2
    assert [r["name"] for r in payload["records"]] == ["pa", "pb"]
    json.dumps(payload)  # must be pure JSON


def test_enqueue_suite_resolves_and_dedups(tmp_path):
    queue, added, skipped = enqueue_suite(
        str(tmp_path / "q"), "nla", ["ps2", "ps3"], config=FAST_CONFIG
    )
    assert (added, skipped) == (2, 0)
    assert queue.meta["suite"] == "nla"
    _, added2, skipped2 = enqueue_suite(
        str(tmp_path / "q"), "nla", ["ps2", "ps3"], config=FAST_CONFIG
    )
    assert (added2, skipped2) == (0, 2)
    item = queue.claim("w")[0]
    assert item.data["problem"] == {
        "kind": "suite", "suite": "nla", "name": "ps2"
    }


def test_run_many_validates_distributed_args():
    with pytest.raises(ValueError, match="workers"):
        run_many([tiny_problem("x")], FAST_CONFIG, workers=0)
    with pytest.raises(ValueError, match="mutually exclusive"):
        run_many([tiny_problem("x")], FAST_CONFIG, workers=2, jobs=2)
    with pytest.raises(ValueError, match="mutually exclusive"):
        run_many(
            [tiny_problem("x")], FAST_CONFIG, workers=2,
            solve_fn=lambda p, c: None,
        )
    with pytest.raises(ValueError, match="gcln"):
        run_many(
            [tiny_problem("x")], FAST_CONFIG, workers=2, cross_batch=2,
            solver="numinv",
        )


def test_service_solve_many_workers(tmp_path):
    from repro.api import InvariantService, ProblemSolved

    service = InvariantService(FAST_CONFIG)
    events = []
    service.subscribe(lambda e: events.append(e), kinds=(ProblemSolved,))
    records = service.solve_many(
        [tiny_problem("sv1"), tiny_problem("sv2", 2)],
        workers=2,
        queue_dir=str(tmp_path / "q"),
    )
    assert [r.name for r in records] == ["sv1", "sv2"]
    assert all(r.status == STATUS_OK for r in records)
    assert sorted(e.problem for e in events) == ["sv1", "sv2"]


def test_cli_enqueue_and_worker_roundtrip(tmp_path, capsys):
    from repro.cli import main

    queue_dir = str(tmp_path / "q")
    assert main(
        [
            "enqueue", "--queue-dir", queue_dir, "--suite", "stability",
            "--problems", "conj_eq", "--epochs", "200",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "enqueued 1 item(s)" in out
    assert main(["worker", "--queue-dir", queue_dir]) == 0
    out = capsys.readouterr().out
    assert "processed 1 item(s)" in out
    queue = WorkQueue.open(queue_dir)
    assert queue.unfinished() == 0
    [entry] = queue.journal_entries()
    assert entry["payload"]["record"]["name"] == "conj_eq"


def test_cli_worker_rejects_missing_queue(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="not a work queue"):
        main(["worker", "--queue-dir", str(tmp_path / "missing")])


def test_cli_run_all_workers_validation():
    from repro.cli import main

    with pytest.raises(SystemExit, match="workers"):
        main(["run-all", "--workers", "0"])
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["run-all", "--workers", "2", "--jobs", "2"])


@pytest.mark.slow
def test_cli_run_all_distributed(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "dist.json"
    code = main(
        [
            "run-all", "--suite", "stability", "--problems", "conj_eq",
            "--epochs", "400", "--workers", "2",
            "--queue-dir", str(tmp_path / "q"), "--json", str(out_path),
        ]
    )
    assert code in (0, 1)
    out = capsys.readouterr().out
    assert "2 worker(s)" in out
    payload = json.loads(out_path.read_text())
    assert payload["records"][0]["name"] == "conj_eq"
    assert payload["records"][0]["status"] == "ok"
