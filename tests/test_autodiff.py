"""Tests for the autodiff engine, including finite-difference checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AutodiffError
from repro.autodiff import Adam, SGD, Tensor, exp, gaussian, log, no_grad, sigmoid, where
from repro.autodiff.functional import concat, maximum, minimum, relu, sqrt, stack, tanh
from repro.autodiff.optim import clip_grad_norm


def finite_diff(f, x: Tensor, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x.data)
    flat = x.data.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f().item()
        flat[i] = original - eps
        down = f().item()
        flat[i] = original
        out[i] = (up - down) / (2 * eps)
    return grad


def check_grad(build, x: Tensor, tol: float = 1e-5):
    x.zero_grad()
    build().backward()
    assert x.grad is not None
    numeric = finite_diff(build, x)
    np.testing.assert_allclose(x.grad, numeric, atol=tol, rtol=1e-4)


def test_add_mul_grad():
    x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
    check_grad(lambda: ((x * 3.0 + 1.0) * x).sum(), x)


def test_div_pow_grad():
    x = Tensor(np.array([1.5, 2.5]), requires_grad=True)
    check_grad(lambda: ((x**3) / (x + 10.0)).sum(), x)


def test_matmul_grad():
    W = Tensor(np.arange(6, dtype=float).reshape(2, 3) / 10 + 0.1, requires_grad=True)
    X = Tensor(np.ones((4, 2)))
    check_grad(lambda: ((X @ W) ** 2).sum(), W)


def test_broadcast_grad():
    b = Tensor(np.array([0.5, -0.5, 1.0]), requires_grad=True)
    X = Tensor(np.ones((4, 3)))
    check_grad(lambda: ((X + b) * 2.0).sum(), b)


def test_elementwise_functions_grad():
    x = Tensor(np.array([0.3, -0.7, 1.2]), requires_grad=True)
    check_grad(lambda: sigmoid(x).sum(), x)
    check_grad(lambda: tanh(x).sum(), x)
    check_grad(lambda: exp(x).sum(), x)
    check_grad(lambda: gaussian(x, 0.8).sum(), x)


def test_log_sqrt_grad():
    x = Tensor(np.array([0.5, 2.0]), requires_grad=True)
    check_grad(lambda: log(x).sum(), x)
    check_grad(lambda: sqrt(x).sum(), x)


def test_abs_grad():
    x = Tensor(np.array([0.5, -2.0]), requires_grad=True)
    check_grad(lambda: x.abs().sum(), x)


def test_prod_grad_no_zero():
    x = Tensor(np.array([[1.0, 2.0, 3.0], [0.5, 4.0, -1.0]]), requires_grad=True)
    check_grad(lambda: x.prod(axis=1).sum(), x)


def test_prod_grad_with_zero():
    x = Tensor(np.array([0.0, 2.0, 3.0]), requires_grad=True)
    x.prod(axis=0).backward()
    np.testing.assert_allclose(x.grad, [6.0, 0.0, 0.0])


def test_where_selects_gradients():
    a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
    where(np.array([True, False]), a, b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 0.0])
    np.testing.assert_allclose(b.grad, [0.0, 1.0])


def test_max_min_relu():
    a = Tensor(np.array([1.0, -2.0]), requires_grad=True)
    b = Tensor(np.array([0.0, 0.0]))
    assert maximum(a, b).data.tolist() == [1.0, 0.0]
    assert minimum(a, b).data.tolist() == [0.0, -2.0]
    assert relu(a).data.tolist() == [1.0, 0.0]


def test_stack_concat():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(np.zeros(3), requires_grad=True)
    s = stack([a, b], axis=1)
    assert s.shape == (3, 2)
    c = concat([a, b], axis=0)
    assert c.shape == (6,)
    (s.sum() + c.sum()).backward()
    np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])


def test_getitem_grad():
    x = Tensor(np.arange(5, dtype=float), requires_grad=True)
    (x[1:3].sum() * 2.0).backward()
    np.testing.assert_allclose(x.grad, [0, 2, 2, 0, 0])


def test_gradient_accumulates_over_reuse():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x * x + x * 3.0
    y.backward()
    np.testing.assert_allclose(x.grad, [7.0])


def test_backward_requires_scalar():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(AutodiffError):
        (x * 2.0).backward()


def test_no_grad_blocks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * 2.0).sum()
    assert not y.requires_grad


def test_deep_graph_does_not_recurse():
    x = Tensor(np.array([1.0]), requires_grad=True)
    y = x
    for _ in range(5000):
        y = y + 0.0
    y.sum().backward()
    np.testing.assert_allclose(x.grad, [1.0])


def test_sgd_momentum_descends():
    w = Tensor(np.array([5.0]), requires_grad=True)
    opt = SGD([w], lr=0.1, momentum=0.5)
    for _ in range(100):
        opt.zero_grad()
        (w * w).sum().backward()
        opt.step()
    assert abs(w.data[0]) < 1e-2


def test_adam_descends_and_decays():
    w = Tensor(np.array([3.0, -2.0]), requires_grad=True)
    opt = Adam([w], lr=0.1, decay=0.999)
    for _ in range(300):
        opt.zero_grad()
        (w * w).sum().backward()
        opt.step()
    assert np.abs(w.data).max() < 1e-2
    assert opt.lr < 0.1


def test_optimizer_rejects_no_params():
    with pytest.raises(AutodiffError):
        Adam([Tensor(np.ones(1))], lr=0.1)


def test_clip_grad_norm():
    w = Tensor(np.array([1.0]), requires_grad=True)
    (w * 100.0).sum().backward()
    norm = clip_grad_norm([w], 1.0)
    assert norm == pytest.approx(100.0)
    np.testing.assert_allclose(w.grad, [1.0])


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-2, 2), min_size=2, max_size=5))
def test_composite_gradient_property(values):
    x = Tensor(np.array(values), requires_grad=True)
    check_grad(lambda: (sigmoid(x * 2.0) * gaussian(x, 1.0)).sum(), x, tol=1e-4)
