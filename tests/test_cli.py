"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_assignment, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sqrt1" in out and "ps6" in out and "knuth" in out


def test_trace_command(capsys):
    assert main(["trace", "ps2", "--inputs", "k=4"]) == 0
    out = capsys.readouterr().out
    assert "loop" in out and "iter" in out
    # 4 passing guard tests + exit snapshot.
    assert len(out.strip().splitlines()) >= 6


def test_trace_assume_violation(capsys):
    assert main(["trace", "ps2", "--inputs", "k=-3"]) == 1
    assert "assume violated" in capsys.readouterr().out


def test_parse_assignment():
    parsed = _parse_assignment(["k=5", "r=3/2"])
    assert parsed["k"] == 5
    from fractions import Fraction

    assert parsed["r"] == Fraction(3, 2)


def test_parse_assignment_errors():
    with pytest.raises(SystemExit):
        _parse_assignment(["k"])
    with pytest.raises(SystemExit):
        _parse_assignment(["k=abc"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_run_command(capsys):
    code = main(["run", "ps2", "--epochs", "1200"])
    out = capsys.readouterr().out
    assert "invariant:" in out
    assert code in (0, 1)


def test_solvers_command(capsys):
    assert main(["solvers"]) == 0
    out = capsys.readouterr().out
    for name in ("gcln", "guess_and_check", "octahedral", "numinv"):
        assert name in out


def test_run_rejects_unknown_solver(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "ps2", "--solver", "nosuch"])
    # The error names the typo and lists the registered solvers.
    message = str(excinfo.value)
    assert "nosuch" in message and "gcln" in message


def test_run_all_rejects_unknown_solver():
    with pytest.raises(SystemExit) as excinfo:
        main(["run-all", "--solver", "nosuch", "--problems", "ps2"])
    assert "nosuch" in str(excinfo.value)


def test_run_baseline_solver_with_events(capsys, tmp_path):
    """A registered baseline runs through the CLI and streams events."""
    import json

    out_path = tmp_path / "result.json"
    code = main(
        [
            "run",
            "ps2",
            "--solver",
            "numinv",
            "--events",
            "--json",
            str(out_path),
        ]
    )
    assert code == 0  # numinv solves ps2 (equalities + octahedral bound)
    out = capsys.readouterr().out
    assert "solver:   numinv" in out
    assert "[event] stage_timed" in out
    assert "[event] problem_solved" in out
    payload = json.loads(out_path.read_text())
    assert payload["solver"] == "numinv"
    assert payload["solved"] is True
    assert set(payload["stage_timings"]) == {"collect", "train", "extract", "check"}


def test_run_all_rejects_unknown_suite():
    with pytest.raises(SystemExit):
        main(["run-all", "--suite", "nosuch"])


def test_run_all_rejects_unknown_problem():
    with pytest.raises(SystemExit):
        main(["run-all", "--problems", "nosuch_problem"])


@pytest.mark.slow
def test_run_all_command_with_json(capsys, tmp_path):
    import json

    out_path = tmp_path / "records.json"
    code = main(
        [
            "run-all",
            "--suite",
            "stability",
            "--problems",
            "conj_eq",
            "--epochs",
            "400",
            "--jobs",
            "1",
            "--json",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert "run-all" in out and "conj_eq" in out
    assert code in (0, 1)
    payload = json.loads(out_path.read_text())
    assert payload["suite"] == "stability"
    assert payload["summary"]["problems"] == 1
    assert payload["records"][0]["name"] == "conj_eq"
    assert payload["records"][0]["status"] == "ok"


@pytest.mark.slow
def test_run_json_output(capsys, tmp_path):
    import json

    out_path = tmp_path / "result.json"
    code = main(["run", "ps2", "--epochs", "600", "--json", str(out_path)])
    assert code in (0, 1)
    payload = json.loads(out_path.read_text())
    assert payload["problem"] == "ps2"
    assert isinstance(payload["solved"], bool)
    assert payload["loops"] and "invariant" in payload["loops"][0]


@pytest.mark.slow
def test_profile_command(capsys, tmp_path):
    code = main(
        [
            "profile",
            "ps2",
            "--epochs",
            "120",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    for stage in ("collect", "train", "extract", "check"):
        assert stage in out
    assert "TOTAL" in out
    assert "disk_hits" in out


def test_run_all_cross_batch_validation():
    with pytest.raises(SystemExit, match="cross-batch"):
        main(["run-all", "--cross-batch", "0"])
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["run-all", "--cross-batch", "2", "--jobs", "2"])
    with pytest.raises(SystemExit, match="gcln"):
        main(["run-all", "--cross-batch", "2", "--solver", "numinv"])


@pytest.mark.slow
def test_run_all_cross_batch_command(capsys, tmp_path):
    import json

    out_path = tmp_path / "records.json"
    code = main(
        [
            "run-all",
            "--suite",
            "stability",
            "--problems",
            "conj_eq",
            "disj_eq",
            "--cross-batch",
            "2",
            "--epochs",
            "300",
            "--json",
            str(out_path),
        ]
    )
    assert code in (0, 1)
    payload = json.loads(out_path.read_text())
    assert payload["cross_batch"] == 2
    assert {r["name"] for r in payload["records"]} == {"conj_eq", "disj_eq"}
    assert all(r["status"] == "ok" for r in payload["records"])


def test_run_all_warns_once_on_unenforceable_timeout(capsys, monkeypatch):
    import signal

    monkeypatch.delattr(signal, "SIGALRM")
    code = main(
        [
            "run-all",
            "--suite",
            "stability",
            "--problems",
            "conj_eq",
            "--epochs",
            "60",
            "--timeout",
            "600",
        ]
    )
    assert code in (0, 1)
    err = capsys.readouterr().err
    assert err.count("could not be enforced") == 1
    assert "timeout_enforced=false" in err
