"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import parse_program
from repro.sampling import (
    build_term_basis,
    collect_traces,
    enumerate_inputs,
    evaluate_terms,
    loop_dataset,
    normalize_rows,
)

SQRT1_SOURCE = """
program sqrt1;
input n;
assume (n >= 0);
a = 0; s = 1; t = 1;
while (s <= n) { a = a + 1; t = t + 2; s = s + t; }
assert (a * a <= n);
"""

PS2_SOURCE = """
program ps2;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y; }
assert (2 * x == y * y + y);
"""


@pytest.fixture(scope="session")
def sqrt1_program():
    return parse_program(SQRT1_SOURCE)


@pytest.fixture(scope="session")
def ps2_program():
    return parse_program(PS2_SOURCE)


@pytest.fixture(scope="session")
def sqrt1_data(sqrt1_program):
    """(states, basis, raw matrix, normalized matrix) for sqrt1."""
    traces = collect_traces(
        sqrt1_program, enumerate_inputs({"n": list(range(0, 30))})
    )
    states = loop_dataset(traces, 0, max_states=80)
    basis = build_term_basis(["a", "s", "t", "n"], 2)
    raw = evaluate_terms(states, basis)
    return states, basis, raw, normalize_rows(raw)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
