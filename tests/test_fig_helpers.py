"""Tests mirroring the figure benches' core assertions (fast versions).

The figure benchmarks print full tables; these tests pin down the same
shape claims so regressions are caught by ``pytest tests/`` alone.
"""

import numpy as np

from repro.cln.activations import pbqu_ge_numpy, sigmoid_ge_numpy


def test_fig7_pbqu_penalizes_loose_fits():
    xs = np.linspace(0.0, 50.0, 101)
    pbqu = pbqu_ge_numpy(xs, c1=0.5, c2=5.0)
    # Strictly decreasing above the bound: loose fits score lower.
    assert np.all(np.diff(pbqu) < 0)


def test_fig7_sigmoid_rewards_loose_fits():
    xs = np.linspace(0.0, 50.0, 101)
    sig = sigmoid_ge_numpy(xs, B=5.0, eps=0.5)
    assert np.all(np.diff(sig) >= 0)


def test_fig7_pbqu_limit_behaviour():
    """c1 -> 0, c2 -> inf approaches the discrete predicate (Eq. 3)."""
    xs = np.array([-1.0, -0.1, 0.1, 1.0])
    sharp = pbqu_ge_numpy(xs, c1=1e-4, c2=1e6)
    np.testing.assert_allclose(sharp, [0.0, 0.0, 1.0, 1.0], atol=1e-4)


def test_theorem_4_2_tightness_shape():
    """Theorem 4.2's conclusion, empirically: with c1 <= 2l and
    c1*c2 >= 8*sqrt(n)*l^2, maximizing PBQU over unit-norm (w, b) on 1-D
    data learns a bound within c1/sqrt(3) of the desired (touching)
    bound."""
    from repro.autodiff import Tensor
    from repro.autodiff.optim import Adam

    rng = np.random.default_rng(0)
    points = rng.uniform(2.0, 6.0, size=24)  # true tight bound: x - 2 >= 0
    X = np.stack([points, np.ones_like(points)], axis=1)
    row_norm = float(np.max(np.linalg.norm(X, axis=1)))
    c1 = 0.5
    c2 = 8 * np.sqrt(len(points)) * row_norm * row_norm / c1
    w = Tensor(np.array([1.0, 0.0]), requires_grad=True)
    opt = Adam([w], lr=0.02)
    Xt = Tensor(X)
    for _ in range(1500):
        opt.zero_grad()
        norm = ((w * w).sum() + 1e-12) ** 0.5
        r = Xt @ (w / norm)
        below = (c1 * c1) / (r * r + c1 * c1)
        above = (c2 * c2) / (r * r + c2 * c2)
        from repro.autodiff.functional import where

        act = where(r.data >= 0, above, below)
        loss = (1.0 - act).sum()
        loss.backward()
        opt.step()
    direction = w.data / np.linalg.norm(w.data)
    residuals = X @ direction
    # Valid bound up to the theorem's error, and tight on some point.
    assert residuals.min() > -c1 / np.sqrt(3) - 0.05
    assert residuals.min() < c1
