"""Tests for graph taping: record once, replay with reused buffers."""

import numpy as np
import pytest

from repro.autodiff import Tape, Tensor, gaussian, pbqu, sigmoid, where
from repro.errors import AutodiffError


def test_tape_replay_matches_eager_gradients():
    w = Tensor(np.array([0.5, -1.0, 2.0]), requires_grad=True)
    X = Tensor(np.arange(12, dtype=float).reshape(4, 3) / 10.0)

    def build():
        return (sigmoid(X @ w) * 2.0).sum()

    tape = Tape()
    for step in range(4):
        w.grad = None
        loss = tape.step(build)

        w2 = Tensor(w.data.copy(), requires_grad=True)
        expected = (sigmoid(X @ w2) * 2.0).sum()
        expected.backward()
        np.testing.assert_allclose(loss.data, expected.data, rtol=1e-12)
        np.testing.assert_allclose(w.grad, w2.grad, rtol=1e-12)
        # Mutate the leaf in place; the replayed graph must track it.
        w.data -= 0.1 * w.grad
    assert tape.replayable
    assert tape.replays == 3


def test_tape_replay_allocates_no_new_nodes():
    w = Tensor(np.ones(3), requires_grad=True)
    X = Tensor(np.ones((5, 3)))
    tape = Tape()
    tape.step(lambda: ((X @ w) ** 2).sum())
    recorded = tape.n_nodes
    for _ in range(3):
        w.grad = None
        tape.step(lambda: ((X @ w) ** 2).sum())
    assert tape.n_nodes == recorded


def test_tape_scalar_boxes_update_dynamically():
    """Schedule scalars in 0-d boxes must be re-read on every replay."""
    x = Tensor(np.array([0.5, -0.5]), requires_grad=True)
    sigma_box = np.array(2.0)
    tape = Tape()

    def build():
        return gaussian(x, sigma_box).sum()

    first = float(tape.step(build).data)
    sigma_box[...] = 0.5
    x.grad = None
    second = float(tape.step(build).data)
    expected = float(np.exp(-(x.data**2) / (2 * 0.5**2)).sum())
    assert second == pytest.approx(expected)
    assert first != pytest.approx(second)


def test_tape_pbqu_branch_condition_tracks_data():
    """The fused PBQU recomputes its sign branch on replay."""
    t = Tensor(np.array([1.0, -1.0]), requires_grad=True)
    tape = Tape()
    tape.step(lambda: pbqu(t, 1.0, 50.0).sum())
    t.data[...] = [-1.0, 1.0]  # flip every branch
    t.grad = None
    loss = tape.step(lambda: pbqu(t, 1.0, 50.0).sum())
    ref = Tensor(t.data.copy(), requires_grad=True)
    expected = pbqu(ref, 1.0, 50.0).sum()
    expected.backward()
    np.testing.assert_allclose(loss.data, expected.data)
    np.testing.assert_allclose(t.grad, ref.grad)


def test_tape_replays_where_with_dynamic_condition():
    """A callable ``where`` condition is re-evaluated on every replay."""
    a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    b = Tensor(np.array([3.0, 4.0]))
    tape = Tape()

    def build():
        return where(lambda: a.data >= 1.5, a, b).sum()

    loss = tape.step(build)
    assert tape.replayable
    np.testing.assert_allclose(loss.data, 3.0 + 2.0)
    np.testing.assert_allclose(a.grad, [0.0, 1.0])
    # Flip the condition by mutating the leaf; the replayed graph must
    # recompute the branch, not reuse the recorded mask.
    a.data[...] = [2.0, 1.0]
    a.grad = None
    loss = tape.step(build)
    assert tape.replays == 1
    np.testing.assert_allclose(loss.data, 2.0 + 4.0)
    np.testing.assert_allclose(a.grad, [1.0, 0.0])


def test_tape_replays_where_with_array_condition():
    """An array condition is re-read in place across replays."""
    a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    b = Tensor(np.array([3.0, 4.0]))
    cond = np.array([True, False])
    tape = Tape()

    def build():
        return where(cond, a, b).sum()

    loss = tape.step(build)
    assert tape.replayable
    np.testing.assert_allclose(loss.data, 1.0 + 4.0)
    cond[...] = [False, True]
    a.grad = None
    loss = tape.step(build)
    np.testing.assert_allclose(loss.data, 3.0 + 2.0)
    np.testing.assert_allclose(a.grad, [0.0, 1.0])


def test_tape_rejects_non_scalar_root():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(AutodiffError):
        Tape().step(lambda: x * 2.0)


def test_in_place_zero_grad_accumulates_correctly():
    """Optimizer zero_grad keeps the buffer; backward adds into it."""
    from repro.autodiff import Adam

    w = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    opt = Adam([w], lr=0.1)
    (w * 3.0).sum().backward()
    buffer = w.grad
    opt.zero_grad()
    assert w.grad is buffer  # reused, not reallocated
    np.testing.assert_allclose(w.grad, [0.0, 0.0])
    (w * 3.0).sum().backward()
    np.testing.assert_allclose(w.grad, [3.0, 3.0])
