"""Tests for the trace/matrix cache and its use by the engine."""

from repro.infer import InferenceConfig, InferenceEngine, Problem
from repro.infer.stages import build_matrix, collect_states
from repro.lang import parse_program
from repro.sampling.cache import (
    TraceCache,
    fingerprint_inputs,
    fingerprint_program,
)

TINY_SOURCE = """
program tiny;
input n;
assume (n >= 0);
i = 0;
while (i < n) { i = i + 1; }
"""


def tiny_problem(**overrides) -> Problem:
    spec = dict(
        name="tiny",
        source=TINY_SOURCE,
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        # Unsatisfiable ground truth: every attempt fails, so the
        # engine walks the whole retry schedule.
        ground_truth={0: ["i == n + 1"]},
    )
    spec.update(overrides)
    return Problem(**spec)


def test_fingerprint_program_is_structural():
    a = parse_program(TINY_SOURCE)
    b = parse_program(TINY_SOURCE)
    c = parse_program(TINY_SOURCE.replace("i + 1", "i + 2"))
    assert a is not b
    assert fingerprint_program(a) == fingerprint_program(b)
    assert fingerprint_program(a) != fingerprint_program(c)


def test_fingerprint_differs_for_relaxed_program():
    """relax_initializers deep-copies the AST; the relaxed program is
    structurally different and must not inherit the original digest."""
    from repro.sampling.fractional import relax_initializers

    program = parse_program(TINY_SOURCE)
    original_digest = fingerprint_program(program)
    relaxed, relaxed_vars = relax_initializers(program)
    assert relaxed_vars
    assert fingerprint_program(relaxed) != original_digest
    assert fingerprint_program(program) == original_digest


def test_fingerprint_inputs_order_and_value_sensitivity():
    assert fingerprint_inputs([{"a": 1, "b": 2}]) == fingerprint_inputs(
        [{"b": 2, "a": 1}]
    )
    assert fingerprint_inputs([{"a": 1}]) != fingerprint_inputs([{"a": 2}])
    assert fingerprint_inputs([{"a": 1}, {"a": 2}]) != fingerprint_inputs(
        [{"a": 2}, {"a": 1}]
    )


def test_traces_memoized_by_content():
    cache = TraceCache()
    program_a = parse_program(TINY_SOURCE)
    program_b = parse_program(TINY_SOURCE)  # distinct object, same source
    inputs = [{"n": 3}, {"n": 5}]
    first = cache.traces(program_a, inputs)
    second = cache.traces(program_b, inputs)
    assert second is first
    assert cache.stats.trace_hits == 1
    assert cache.stats.trace_misses == 1
    # Different inputs miss.
    cache.traces(program_a, [{"n": 4}])
    assert cache.stats.trace_misses == 2


def test_checker_traces_keyed_separately_from_sampler_traces():
    cache = TraceCache()
    program = parse_program(TINY_SOURCE)
    inputs = [{"n": 3}]
    cache.traces(program, inputs)
    sentinel: list = []
    got = cache.checker_traces(program, inputs, fuel=100_000, run=lambda: sentinel)
    assert got is sentinel  # did not reuse the sampler entry
    assert cache.stats.trace_misses == 2
    # Second checker call for the same key hits.
    again = cache.checker_traces(
        program, inputs, fuel=100_000, run=lambda: [object()]
    )
    assert again is sentinel
    assert cache.stats.trace_hits == 1


def test_lru_eviction_bounds_entries():
    cache = TraceCache(max_entries=2)
    program = parse_program(TINY_SOURCE)
    cache.traces(program, [{"n": 1}])
    cache.traces(program, [{"n": 2}])
    assert cache.stats.evictions == 0
    cache.traces(program, [{"n": 3}])  # evicts the n=1 entry
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    cache.traces(program, [{"n": 1}])
    assert cache.stats.trace_hits == 0
    assert cache.stats.trace_misses == 4
    assert cache.stats.evictions == 2
    assert cache.stats.to_dict()["evictions"] == 2


def test_collect_states_and_build_matrix_memoize():
    cache = TraceCache()
    problem = tiny_problem()
    config = InferenceConfig()
    first = collect_states(problem, config, None, cache)
    second = collect_states(problem, config, None, cache)
    assert second is first
    assert cache.stats.trace_hits == 1

    bundle_a = build_matrix(problem, config, first, 0, cache)
    bundle_b = build_matrix(problem, config, second, 0, cache)
    assert bundle_b is bundle_a
    assert cache.stats.matrix_misses == 1
    assert cache.stats.matrix_hits == 1
    assert bundle_a.data.shape[0] == len(first.states[0])


def test_engine_attempts_perform_zero_redundant_collection():
    """Acceptance: attempts 2+ reuse traces and matrices entirely."""
    config = InferenceConfig(max_epochs=60, dropout_schedule=(0.6, 0.7, 0.5))
    engine = InferenceEngine(tiny_problem(), config)
    result = engine.run()
    assert not result.solved
    assert result.attempts == 3
    stats = engine.cache.stats
    # Exactly one state-dataset build, one underlying trace collection,
    # and one checker-side collection; attempts 2 and 3 are pure hits.
    assert stats.trace_misses == 3
    assert stats.trace_hits == result.attempts - 1 == 2
    assert stats.matrix_misses == 1
    assert stats.matrix_hits == result.attempts - 1 == 2
    assert result.cache_stats == stats.to_dict()


def test_shared_cache_across_engines():
    """A second engine for the same problem reuses everything."""
    cache = TraceCache()
    config = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))
    InferenceEngine(tiny_problem(), config, cache=cache).run()
    misses_after_first = cache.stats.trace_misses
    InferenceEngine(tiny_problem(), config, cache=cache).run()
    assert cache.stats.trace_misses == misses_after_first


def test_disk_persistence_across_cache_instances(tmp_path):
    """A fresh process pointed at the same cache_dir skips computation."""
    program = parse_program(TINY_SOURCE)
    inputs = [{"n": 3}, {"n": 5}]
    first = TraceCache(cache_dir=tmp_path)
    traces = first.traces(program, inputs)
    assert first.stats.trace_misses == 1
    assert first.stats.disk_hits == 0

    second = TraceCache(cache_dir=tmp_path)
    recovered = second.traces(parse_program(TINY_SOURCE), inputs)
    assert second.stats.disk_hits == 1
    assert second.stats.trace_misses == 0
    assert len(recovered) == len(traces)
    # Different inputs still compute (and spill for next time).
    second.traces(program, [{"n": 4}])
    assert second.stats.trace_misses == 1
    assert second.stats.to_dict()["disk_hits"] == 1


def test_disk_cache_tolerates_corrupt_spill(tmp_path):
    program = parse_program(TINY_SOURCE)
    cache = TraceCache(cache_dir=tmp_path)
    cache.traces(program, [{"n": 3}])
    for spill in tmp_path.iterdir():
        spill.write_bytes(b"not a pickle")
    fresh = TraceCache(cache_dir=tmp_path)
    traces = fresh.traces(parse_program(TINY_SOURCE), [{"n": 3}])
    assert fresh.stats.disk_hits == 0
    assert fresh.stats.trace_misses == 1
    assert traces


def test_engine_reruns_hit_disk_instead_of_interpreting(tmp_path):
    """Acceptance: a rerun with --cache-dir performs zero trace misses."""
    config = InferenceConfig(max_epochs=40, dropout_schedule=(0.6,))
    first = InferenceEngine(
        tiny_problem(), config, cache=TraceCache(cache_dir=tmp_path)
    )
    first.run()
    assert first.cache.stats.trace_misses > 0

    rerun = InferenceEngine(
        tiny_problem(), config, cache=TraceCache(cache_dir=tmp_path)
    )
    result = rerun.run()
    assert rerun.cache.stats.trace_misses == 0
    assert rerun.cache.stats.matrix_misses == 0
    assert rerun.cache.stats.disk_hits > 0
    assert result.cache_stats["disk_hits"] == rerun.cache.stats.disk_hits
