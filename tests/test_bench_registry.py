"""Tests for the benchmark registries (NLA, Code2Inv-like, stability)."""

from fractions import Fraction

import pytest

from repro.bench import NLA_PROBLEMS, code2inv_problems, nla_problem, stability_problems
from repro.errors import ReproError
from repro.sampling import collect_traces, loop_dataset
from repro.sampling.termgen import extend_state


def test_nla_has_27_problems():
    assert len(NLA_PROBLEMS) == 27
    assert sum(1 for e in NLA_PROBLEMS if not e.expected_solved) == 1  # knuth


def test_nla_metadata_matches_table2():
    by_name = {e.name: e for e in NLA_PROBLEMS}
    assert by_name["ps6"].degree == 6
    assert by_name["egcd3"].n_vars == 13
    assert not by_name["knuth"].expected_solved


def test_unknown_problem_rejected():
    with pytest.raises(ReproError):
        nla_problem("nosuch")


@pytest.mark.parametrize("entry", NLA_PROBLEMS, ids=lambda e: e.name)
def test_nla_programs_parse_and_run(entry):
    problem = nla_problem(entry.name)
    program = problem.program  # parses
    traces = collect_traces(program, problem.train_inputs[:12])
    assert traces
    assert not any(t.assertion_failures for t in traces)


@pytest.mark.parametrize(
    "name", ["sqrt1", "cohencu", "ps2", "geo1", "prodbin", "freire2"]
)
def test_nla_ground_truth_holds_on_traces(name):
    problem = nla_problem(name)
    traces = collect_traces(problem.program, problem.train_inputs[:30])
    for loop_index, sources in problem.ground_truth.items():
        states = loop_dataset(traces, loop_index, max_states=100)
        for atom in problem.ground_truth_atoms(loop_index):
            for state in states:
                ext = (
                    extend_state(state, problem.externals)
                    if problem.externals
                    else state
                )
                exact = {k: Fraction(v) for k, v in ext.items()}
                assert atom.evaluate(exact), f"{name}: {atom} fails at {state}"


def test_code2inv_suite_size_and_determinism():
    problems = code2inv_problems()
    assert len(problems) == 124
    names = [p.name for p in problems]
    assert len(set(names)) == 124
    again = [p.name for p in code2inv_problems()]
    assert names == again


def test_code2inv_programs_run_clean():
    for problem in code2inv_problems()[::17]:
        traces = collect_traces(problem.program, problem.train_inputs[:6])
        assert not any(t.assertion_failures for t in traces)


def test_stability_problem_set():
    problems = stability_problems()
    assert set(problems) == {
        "Conj Eq",
        "Disj Eq",
        "Code2Inv 1",
        "Code2Inv 11",
        "ps2",
        "ps3",
    }
    for problem in problems.values():
        traces = collect_traces(problem.program, problem.train_inputs[:10])
        assert not any(t.assertion_failures for t in traces)
