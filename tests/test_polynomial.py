"""Unit tests for repro.poly.polynomial."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import PolyError
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial


def P(src: str) -> Polynomial:
    """Parse a polynomial via the mini-language expression parser."""
    from repro.lang.parser import parse_expr
    from repro.smt.convert import arith_to_polynomial

    return arith_to_polynomial(parse_expr(src))


def test_zero_and_constant():
    assert Polynomial.zero().is_zero()
    assert Polynomial.constant(5).is_constant()
    assert Polynomial.constant(0).is_zero()


def test_addition_cancels():
    x = Polynomial.var("x")
    assert (x - x).is_zero()


def test_string_rendering():
    poly = P("x*x - 2*x + 1")
    assert str(poly) == "x^2 - 2*x + 1"


def test_arith_matches_reference():
    poly = P("(x + y) * (x - y)")
    assert poly == P("x*x - y*y")


def test_pow():
    assert P("x + 1") ** 3 == P("x*x*x + 3*x*x + 3*x + 1")


def test_pow_negative_rejected():
    with pytest.raises(PolyError):
        P("x") ** -1


def test_substitute_linear():
    poly = P("x * x + y")
    result = poly.substitute({"x": P("y + 1")})
    assert result == P("y*y + 3*y + 1")


def test_substitute_untouched_variables():
    poly = P("x + z")
    assert poly.substitute({"x": P("2*z")}) == P("3*z")


def test_evaluate_exact():
    poly = P("x*x - y")
    assert poly.evaluate({"x": Fraction(3, 2), "y": 2}) == Fraction(1, 4)


def test_evaluate_missing_variable():
    with pytest.raises(PolyError):
        P("x").evaluate({})


def test_evaluate_float():
    assert P("2*x + 1").evaluate_float({"x": 0.5}) == pytest.approx(2.0)


def test_leading_term_graded_lex():
    mono, coeff = P("3*x*x + 5*y + 7").leading_term()
    assert mono == Monomial({"x": 2})
    assert coeff == 3


def test_leading_term_of_zero_rejected():
    with pytest.raises(PolyError):
        Polynomial.zero().leading_term()


def test_primitive_clears_denominators():
    poly = P("x").scale(Fraction(1, 2)) + P("y").scale(Fraction(1, 3))
    prim = poly.primitive()
    assert prim == P("3*x + 2*y")


def test_primitive_sign_flip_for_equalities():
    prim = P("0 - x*x + y").primitive()
    assert prim == P("x*x - y")


def test_primitive_preserve_sign():
    prim = P("0 - x*x + y").primitive(preserve_sign=True)
    assert prim == P("y - x*x")


def test_degree():
    assert P("x*y*y + x").degree == 3
    assert Polynomial.zero().degree == 0


def test_variables():
    assert P("x*y + z").variables == frozenset({"x", "y", "z"})


def test_float_coefficient_rejected():
    with pytest.raises(PolyError):
        Polynomial({Monomial.var("x"): 0.5})


_small_polys = st.builds(
    lambda coeffs: Polynomial(
        {
            Monomial({"x": i % 3, "y": i // 3}): c
            for i, c in enumerate(coeffs)
        }
    ),
    st.lists(st.integers(-5, 5), min_size=1, max_size=6),
)


@given(_small_polys, _small_polys)
def test_addition_commutative(p, q):
    assert p + q == q + p


@given(_small_polys, _small_polys, _small_polys)
def test_distributivity(p, q, r):
    assert p * (q + r) == p * q + p * r


@given(_small_polys)
def test_subtraction_self_is_zero(p):
    assert (p - p).is_zero()


@given(_small_polys, st.integers(-3, 3), st.integers(-3, 3))
def test_evaluation_is_ring_homomorphism(p, x, y):
    q = p * p + p
    point = {"x": x, "y": y}
    assert q.evaluate(point) == p.evaluate(point) ** 2 + p.evaluate(point)
