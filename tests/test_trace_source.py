"""Tests for trace-first solving: the ObservationSource layer.

Covers the RecordedTraceSource/InterpreterSource split, the recording
codecs (JSON payload + CSV), the degraded RecordedChecker, solver
capability enforcement, cross-kind cache isolation, and — the core
contract — seed equivalence: a problem fed its own recorded traces
produces identical invariants to the program-backed run at every
level (trainer, run_many, HTTP serve, work queue).
"""

import asyncio
import json
import threading
import time
import urllib.request
from fractions import Fraction

import pytest

from repro.api import (
    InvariantService,
    SolverCapabilities,
    SolverCapabilityError,
    UnknownSolverError,
    register_solver,
    require_solver_supports,
    solver_entries,
    unregister_solver,
)
from repro.checker import CHECKING_FULL, CHECKING_RECORDED, CheckOutcome
from repro.checker.trace import RecordedChecker, make_checker
from repro.checker.vc import InvariantChecker
from repro.dist import Worker, WorkQueue, config_to_dict
from repro.dist.wire import item_for_problem, problem_from_dict, problem_to_dict
from repro.errors import InferenceError, ReproError
from repro.infer import (
    InferenceConfig,
    Problem,
    parse_ground_truth,
    record_observations,
    record_problem,
)
from repro.infer.runner import STATUS_OK, run_many
from repro.infer.stages import collect_states
from repro.sampling import TraceCache, collect_traces, loop_dataset
from repro.sampling.source import (
    InterpreterSource,
    LoopTrace,
    Observation,
    ObservationSource,
    RecordedTraceSource,
    traces_from_csv,
    traces_from_payload,
    traces_to_payload,
)
parse_atom = parse_ground_truth

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str = "tr", step: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


def loops_of(result) -> list[dict]:
    return [loop.to_dict() for loop in result.loops]


# -- sources -------------------------------------------------------------------


def test_sources_implement_the_protocol():
    problem = tiny_problem()
    interp = problem.observations()
    assert isinstance(interp, InterpreterSource)
    assert isinstance(interp, ObservationSource)
    assert interp.kind == "program" and interp.n_loops == 1
    recorded = RecordedTraceSource(record_observations(problem))
    assert isinstance(recorded, ObservationSource)
    assert recorded.kind == "trace" and recorded.n_loops == 1
    assert interp.fingerprint() != recorded.fingerprint()


def test_recorded_source_mirrors_loop_dataset_dedup_and_cap():
    """Recorded train states == loop_dataset over the same traces, for
    every cap — the byte-level half of the seed-equivalence contract."""
    problem = tiny_problem()
    # duplicate inputs so the recording contains duplicate states
    problem.train_inputs = problem.train_inputs + problem.train_inputs[:3]
    traces = collect_traces(problem.program, problem.train_inputs)
    source = RecordedTraceSource(record_observations(problem))
    for cap in (None, 3, 100):
        expected = loop_dataset(traces, 0, max_states=cap)
        assert source.train_states(cap)[0] == expected
    # Recording keeps raw duplicates; assembly dedups them.
    raw = sum(len(t.snapshots) for t in traces)
    assert len(source.data[0].train) == raw
    assert len(source.train_states(None)[0]) < raw


def test_recorded_source_rejects_bad_loop_keys():
    ob = Observation(state={"x": 1})
    with pytest.raises(ReproError, match="no loops"):
        RecordedTraceSource({})
    with pytest.raises(ReproError, match="contiguous"):
        RecordedTraceSource({1: LoopTrace(train=[ob])})
    with pytest.raises(ReproError, match="contiguous"):
        RecordedTraceSource({0: LoopTrace(train=[ob]), 2: LoopTrace(train=[ob])})


def test_recorded_source_variables_and_check_fallback():
    data = {
        0: LoopTrace(
            train=[Observation(state={"b": 1, "a": 2})],
            check=None,
        )
    }
    source = RecordedTraceSource(data)
    assert source.variables(0) == ["a", "b"]
    # check=None falls back to the train sequence
    assert [ob.state for ob in source.check_observations(0)] == [{"b": 1, "a": 2}]


# -- codecs --------------------------------------------------------------------


def test_payload_roundtrip_preserves_states_guards_and_fractions():
    data = {
        0: LoopTrace(
            train=[
                Observation(state={"x": 1, "q": Fraction(1, 3)}, guard=True),
                Observation(state={"x": 2, "q": Fraction(2, 3)}, guard=False),
            ],
            check=[Observation(state={"x": 5, "q": Fraction(0)}, guard=True)],
        ),
        1: LoopTrace(train=[Observation(state={"y": -4})], check=None),
    }
    payload = json.loads(json.dumps(traces_to_payload(data)))
    rebuilt = traces_from_payload(payload)
    assert sorted(rebuilt) == [0, 1]
    assert rebuilt[0].train[0].state == {"x": 1, "q": Fraction(1, 3)}
    assert rebuilt[0].train[1].guard is False
    assert rebuilt[0].check[0].state["q"] == Fraction(0)
    assert rebuilt[1].check is None  # None survives, not an empty list


def test_csv_parsing_kinds_guards_and_values():
    rows = [
        "loop,kind,guard,x,q",
        "0,train,1,1,1/3",
        "0,train,0,2,2/3",
        "0,check,,5,0/1",
        "1,,,7,1/2",
    ]
    data = traces_from_csv(rows)
    assert data[0].train[0].state == {"x": 1, "q": Fraction(1, 3)}
    assert data[0].train[1].guard is False
    assert data[0].check is not None and len(data[0].check) == 1
    assert data[1].train[0].state == {"x": 7, "q": Fraction(1, 2)}
    with pytest.raises(ReproError, match="'loop' column"):
        traces_from_csv(["x,y", "1,2"])
    with pytest.raises(ReproError, match="kind"):
        traces_from_csv(["loop,kind,x", "0,nope,1"])
    with pytest.raises(ReproError, match="no observations"):
        traces_from_csv(["loop,x"])


# -- problems ------------------------------------------------------------------


def test_problem_needs_program_or_traces():
    with pytest.raises(InferenceError, match="both are None"):
        Problem(name="empty")


def test_trace_only_problem_refuses_program_access():
    recorded = record_problem(tiny_problem())
    assert not recorded.program_backed
    assert recorded.n_loops == 1
    with pytest.raises(InferenceError, match="trace-only"):
        recorded.program


def test_problem_capabilities_report_kind_and_checking_mode():
    program = tiny_problem()
    assert program.capabilities() == {
        "kind": "program",
        "program_backed": True,
        "trace_only": False,
        "fractional": False,
        "checking": CHECKING_FULL,
    }
    recorded = record_problem(program)
    caps = recorded.capabilities()
    assert caps["kind"] == "trace" and caps["trace_only"] is True
    assert caps["checking"] == CHECKING_RECORDED


def test_trace_only_loop_variables_derived_or_explicit():
    recorded = record_problem(tiny_problem())
    # record_problem embeds the program's variables explicitly
    assert set(recorded.loop_variables(0)) == {"i", "x", "n"}
    bare = Problem(
        name="bare",
        traces={0: LoopTrace(train=[Observation(state={"u": 1, "v": 2})])},
    )
    assert bare.loop_variables(0) == ["u", "v"]
    empty = Problem(name="none", traces={0: LoopTrace(train=[])})
    with pytest.raises(InferenceError, match="no recorded states"):
        empty.loop_variables(0)


# -- degraded checker ----------------------------------------------------------


def test_make_checker_picks_mode_by_source():
    program = tiny_problem()
    full = make_checker(program)
    assert isinstance(full, InvariantChecker) and full.checking == CHECKING_FULL
    degraded = make_checker(record_problem(program))
    assert isinstance(degraded, RecordedChecker)
    assert degraded.checking == CHECKING_RECORDED


def test_recorded_checker_filters_on_held_out_states():
    recorded = record_problem(tiny_problem())
    checker = make_checker(recorded)
    good = parse_atom("x == i")
    bad = parse_atom("x == i + 99")
    result = checker.filter_sound_atoms(0, [good, bad])
    assert result.sound == [good]
    [(atom, reason)] = result.rejected
    assert atom is bad
    # Same reason string as the full checker's reachability phase, so
    # a recording reproduces the program run's rejection records.
    assert reason == "fails on reachable state"
    assert result.counterexamples
    # Memoized second pass
    before = checker.memo_hits
    checker.filter_sound_atoms(0, [good, bad])
    assert checker.memo_hits == before + 2


def test_recorded_checker_report_is_explicit_about_degradation():
    recorded = record_problem(tiny_problem())
    checker = make_checker(recorded)
    report = checker.check_invariant(0, parse_atom("x == i"))
    assert report.outcome is CheckOutcome.VALID
    assert any("trace-only" in note for note in report.notes)
    # Postconditions cannot be discharged without a program
    with_post = checker.check_invariant(
        0, parse_atom("x == i"), [object()]
    )
    assert with_post.postcondition is CheckOutcome.UNKNOWN
    assert with_post.outcome is CheckOutcome.UNKNOWN
    bad = checker.check_invariant(0, parse_atom("x == i + 99"))
    assert bad.outcome is CheckOutcome.INVALID
    assert bad.counterexamples


def test_recorded_checker_unknown_on_empty_recording():
    source = RecordedTraceSource({0: LoopTrace(train=[])})
    checker = RecordedChecker(source)
    report = checker.check_invariant(0, parse_atom("x == 0"))
    assert report.outcome is CheckOutcome.UNKNOWN


# -- capability enforcement ----------------------------------------------------


def test_builtin_solvers_declare_trace_support():
    caps = {e.name: e.capabilities for e in solver_entries()}
    assert all(c.trace_only for c in caps.values())
    assert caps["gcln"] == SolverCapabilities(
        trace_only=True, inequalities=True, fractional=True
    )
    assert caps["octahedral"].inequalities and not caps["octahedral"].fractional
    assert not caps["guess_and_check"].inequalities


def test_trace_only_dispatch_to_unsupporting_solver_is_refused():
    recorded = record_problem(tiny_problem())
    register_solver(
        "needs-program", lambda: None, description="test-only stub"
    )
    try:
        with pytest.raises(SolverCapabilityError, match="trace-only"):
            require_solver_supports("needs-program", recorded)
        with pytest.raises(SolverCapabilityError, match="gcln"):
            # the error lists the solvers that WOULD work
            InvariantService(FAST_CONFIG).solve(recorded, solver="needs-program")
        # program-backed problems still dispatch fine at the gate
        require_solver_supports("needs-program", tiny_problem())
    finally:
        unregister_solver("needs-program")
    with pytest.raises(UnknownSolverError):
        require_solver_supports("no-such-solver", recorded)


def test_http_protocol_rejects_unsupported_trace_dispatch():
    from repro.serve.protocol import ProtocolError, parse_solve_request

    recorded = record_problem(tiny_problem())
    register_solver(
        "needs-program2", lambda: None, description="test-only stub"
    )
    try:
        body = json.dumps(
            {"problem": problem_to_dict(recorded), "solver": "needs-program2"}
        ).encode()
        with pytest.raises(ProtocolError, match="trace-only"):
            parse_solve_request(body)
        ok = parse_solve_request(
            json.dumps({"problem": problem_to_dict(recorded)}).encode()
        )
        assert not ok.problem.program_backed
    finally:
        unregister_solver("needs-program2")


def test_solvers_response_lists_capabilities():
    from repro.serve.protocol import solvers_response

    payload = solvers_response()
    by_name = {s["name"]: s for s in payload["solvers"]}
    assert by_name["gcln"]["capabilities"] == {
        "trace_only": True,
        "inequalities": True,
        "fractional": True,
    }
    json.dumps(payload)  # must be pure JSON


# -- cache isolation -----------------------------------------------------------


def test_cross_kind_problems_never_share_cached_states(monkeypatch):
    """Even under a (hypothetical) fingerprint collision, the source
    kind in the dataset key keeps trace-only and program-backed entries
    apart."""
    monkeypatch.setattr(InterpreterSource, "fingerprint", lambda self: "same")
    monkeypatch.setattr(RecordedTraceSource, "fingerprint", lambda self: "same")
    program = tiny_problem()
    recorded = record_problem(tiny_problem(step=2))  # different states!
    cache = TraceCache()
    a = collect_states(program, FAST_CONFIG, None, cache)
    b = collect_states(recorded, FAST_CONFIG, None, cache)
    assert a.key != b.key
    assert a.states[0] != b.states[0]
    # two distinct dataset computations, plus the interpreter source's
    # inner collect_traces memo — never a cross-kind hit
    assert cache.stats.trace_hits == 0


def test_repeated_trace_solves_hit_the_cache():
    recorded = record_problem(tiny_problem())
    cache = TraceCache()
    collect_states(recorded, FAST_CONFIG, None, cache)
    misses = cache.stats.trace_misses
    collect_states(recorded, FAST_CONFIG, None, cache)
    assert cache.stats.trace_misses == misses
    assert cache.stats.trace_hits == 1


# -- wire ----------------------------------------------------------------------


def test_trace_problem_round_trips_through_wire():
    recorded = record_problem(tiny_problem())
    data = json.loads(json.dumps(problem_to_dict(recorded)))
    rebuilt = problem_from_dict(data)
    assert rebuilt.source is None
    assert rebuilt.traces is not None
    assert problem_to_dict(rebuilt) == problem_to_dict(recorded)
    assert (
        rebuilt.observations().fingerprint()
        == recorded.observations().fingerprint()
    )


def test_program_problem_wire_format_unchanged():
    problem = tiny_problem()
    data = problem_to_dict(problem)
    assert data["traces"] is None
    assert problem_from_dict(data).traces is None


# -- seed equivalence ----------------------------------------------------------


def test_seed_equivalence_trainer_level():
    """record → re-solve produces identical invariants via the engine."""
    program = tiny_problem("eqt")
    recorded = record_problem(program)
    r_prog = InvariantService(FAST_CONFIG).solve(program)
    r_rec = InvariantService(FAST_CONFIG).solve(recorded)
    assert r_prog.solved and r_rec.solved
    assert loops_of(r_prog) == loops_of(r_rec)
    assert r_prog.checking == CHECKING_FULL
    assert r_rec.checking == CHECKING_RECORDED


def test_seed_equivalence_baseline_solver():
    program = tiny_problem("eqb")
    recorded = record_problem(program)
    r_prog = InvariantService(FAST_CONFIG).solve(program, solver="numinv")
    r_rec = InvariantService(FAST_CONFIG).solve(recorded, solver="numinv")
    assert loops_of(r_prog) == loops_of(r_rec)
    assert r_rec.checking == CHECKING_RECORDED


def test_seed_equivalence_run_many_level():
    program = tiny_problem("eqm")
    recorded = record_problem(program)
    [rec_prog] = run_many([program], FAST_CONFIG)
    [rec_rec] = run_many([recorded], FAST_CONFIG)
    assert rec_prog.status == rec_rec.status == STATUS_OK
    assert loops_of(rec_prog.result) == loops_of(rec_rec.result)


def test_seed_equivalence_work_queue_level(tmp_path):
    """An inline trace-payload queue item solves to the same journal
    record a direct in-process solve produces."""
    program = tiny_problem("eqq")
    recorded = record_problem(program)
    queue = WorkQueue.create(
        tmp_path / "q", meta={"config": config_to_dict(FAST_CONFIG)}
    )
    queue.enqueue([item_for_problem(recorded, 0, config=FAST_CONFIG)])
    assert Worker(queue, worker_id="t").run() == 1
    [entry] = queue.journal_entries()
    journaled = entry["payload"]["record"]
    assert journaled["status"] == STATUS_OK
    [direct] = run_many([program], FAST_CONFIG)
    assert journaled["result"]["loops"] == loops_of(direct.result)
    assert journaled["result"]["checking"] == CHECKING_RECORDED


def test_seed_equivalence_http_serve_level():
    """POST /v1/solve with an inline trace payload returns the same
    invariants as the program-backed solve."""
    from repro.serve.admission import AdmissionController
    from repro.serve.app import InvariantServer
    from repro.serve.executor import InProcessExecutor

    program = tiny_problem("eqh")
    recorded = record_problem(program)
    service = InvariantService(FAST_CONFIG)
    server = InvariantServer(
        service,
        InProcessExecutor(service, threads=1),
        admission=AdmissionController(rate=0, max_inflight=0),
    )

    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=lambda: (
            asyncio.set_event_loop(loop),
            loop.run_until_complete(server.start("127.0.0.1", 0)),
            loop.run_forever(),
        ),
        daemon=True,
    )
    thread.start()
    deadline = time.time() + 5
    while server._server is None:
        if time.time() > deadline:
            raise TimeoutError("server did not start")
        time.sleep(0.01)
    try:
        body = json.dumps({"problem": problem_to_dict(recorded)}).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/solve", data=body
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            assert resp.status == 200
            response = json.loads(resp.read())
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()

    assert response["status"] == STATUS_OK
    assert response["result"]["checking"] == CHECKING_RECORDED
    [direct] = run_many([program], FAST_CONFIG)
    assert response["result"]["loops"] == loops_of(direct.result)


# -- cli -----------------------------------------------------------------------


def test_cli_record_and_resolve_roundtrip(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "rec.json"
    recorded = record_problem(tiny_problem("clirec"))
    path.write_text(json.dumps(problem_to_dict(recorded)))
    code = main(["run", "--traces", str(path), "--epochs", "60"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "problem:  clirec" in out
    assert "checking: bounded-holdout" in out


def test_cli_run_rejects_conflicting_problem_sources(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="not both"):
        main(["run", "ps2", "--traces", str(tmp_path / "x.json")])
    with pytest.raises(SystemExit, match="problem name or --traces"):
        main(["run"])


def test_cli_solvers_lists_capability_columns(capsys):
    from repro.cli import main

    assert main(["solvers"]) == 0
    out = capsys.readouterr().out
    assert "trace-only" in out and "inequalities" in out
