"""Tests for utility modules: rational rounding, tables, timing."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.utils import Stopwatch, format_table, nice_coefficients, round_to_rational, scale_to_integer_coeffs
from repro.utils.rational import round_coefficient_vector


def test_round_to_rational():
    assert round_to_rational(0.5, 10) == Fraction(1, 2)
    assert round_to_rational(0.333, 10) == Fraction(1, 3)
    assert round_to_rational(-0.249, 4) == Fraction(-1, 4)


def test_round_to_rational_rejects_bad_input():
    with pytest.raises(ValueError):
        round_to_rational(1.0, 0)
    with pytest.raises(ValueError):
        round_to_rational(float("nan"), 10)


def test_scale_to_integer_coeffs():
    assert scale_to_integer_coeffs([Fraction(1, 2), Fraction(-1, 3)]) == [3, -2]
    assert scale_to_integer_coeffs([Fraction(4), Fraction(6)]) == [2, 3]


def test_scale_rejects_zero_vector():
    with pytest.raises(ValueError):
        scale_to_integer_coeffs([Fraction(0)])


def test_nice_coefficients_recovers_clean_ratio():
    # learned ~ 0.4472, -0.8944 is the unit vector of (1, -2)
    assert nice_coefficients([0.4473, -0.8943], 10) == [1, -2]


def test_nice_coefficients_drops_noise():
    assert nice_coefficients([1.0, 0.004, -0.5], 10) == [2, 0, -1]


def test_nice_coefficients_all_zero():
    assert nice_coefficients([0.0, 0.0], 10) is None
    assert nice_coefficients([1e-9, 1e-9], 10) == [1, 1]  # scaled to max


def test_round_coefficient_vector_rejects_nonfinite():
    assert round_coefficient_vector([float("inf")], 10) is None


@given(st.lists(st.integers(-9, 9), min_size=2, max_size=6))
def test_nice_coefficients_fixed_point_on_integers(coeffs):
    if all(c == 0 for c in coeffs):
        return
    from math import gcd

    g = 0
    for c in coeffs:
        g = gcd(g, abs(c))
    expected = [c // g for c in coeffs]
    top = max(abs(c) for c in coeffs)
    scaled = [c / top for c in coeffs]
    assert nice_coefficients(scaled, max(abs(c) for c in expected)) == expected


def test_format_table_alignment():
    text = format_table(["name", "val"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4
    assert "long-name" in lines[3]


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a"], [["x", "y"]])


def test_stopwatch():
    sw = Stopwatch()
    with sw:
        pass
    assert sw.elapsed >= 0.0
    with pytest.raises(RuntimeError):
        sw.stop()
    sw.reset()
    assert sw.elapsed == 0.0
