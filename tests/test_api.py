"""Tests for the public API: registry, adapters, service, events."""

import json
import warnings

import pytest

from repro.api import (
    LOOP_KEYS,
    RESULT_KEYS,
    STAGES,
    AttemptStarted,
    CandidateChecked,
    EventBus,
    InvariantService,
    ProblemSolved,
    SolveResult,
    StageTimed,
    UnknownSolverError,
    available_solvers,
    get_solver,
    register_solver,
    solver_entries,
    unregister_solver,
)
from repro.infer import InferenceConfig, InferenceResult, Problem

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str = "tinyline") -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + 2; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: ["x == 2 * i"]},
    )


# -- registry -----------------------------------------------------------------


def test_default_solvers_registered():
    names = available_solvers()
    for expected in (
        "gcln",
        "guess_and_check",
        "octahedral",
        "numinv",
        "enumerative",
        "plain_cln",
    ):
        assert expected in names


def test_unknown_solver_error_lists_available():
    with pytest.raises(UnknownSolverError) as excinfo:
        get_solver("nosuch_solver")
    message = str(excinfo.value)
    assert "nosuch_solver" in message
    for name in available_solvers():
        assert name in message


def test_register_solver_rejects_duplicates_and_unregisters():
    class Fake:
        name = "fake_solver"

        def solve(self, problem, *, config=None, cache=None, events=None):
            return SolveResult(solver=self.name, problem=problem.name, solved=True)

    register_solver("fake_solver", Fake, description="test-only")
    try:
        assert "fake_solver" in available_solvers()
        with pytest.raises(Exception, match="already registered"):
            register_solver("fake_solver", Fake)
        register_solver(
            "fake_solver", Fake, description="replaced", replace=True
        )
        entry = {e.name: e for e in solver_entries()}["fake_solver"]
        assert entry.description == "replaced"
    finally:
        unregister_solver("fake_solver")
    assert "fake_solver" not in available_solvers()


# -- adapters: every solver end-to-end under one schema -----------------------


def _assert_schema(payload: dict) -> None:
    assert set(payload) == set(RESULT_KEYS)
    assert set(payload["stage_timings"]) == set(STAGES)
    for loop in payload["loops"]:
        assert set(loop) == set(LOOP_KEYS)
    json.dumps(payload)  # must be pure JSON


def test_every_registered_solver_runs_end_to_end():
    service = InvariantService(FAST_CONFIG)
    for name in available_solvers():
        result = service.solve(tiny_problem(), solver=name)
        assert result.solver == name
        assert result.problem == "tinyline"
        assert result.runtime_seconds > 0
        _assert_schema(result.to_dict())


def test_equality_solvers_solve_the_linear_problem():
    service = InvariantService(FAST_CONFIG)
    for name in ("gcln", "guess_and_check", "numinv", "enumerative"):
        result = service.solve(tiny_problem(), solver=name)
        assert result.solved, name
        assert result.loops[0].ground_truth_implied
        assert "x" in result.invariant(0)


def test_gcln_and_baseline_records_share_schema():
    """Acceptance: identical JSON schema across solvers via run_many."""
    from repro.infer.runner import run_many

    problems = [tiny_problem()]
    gcln = run_many(problems, FAST_CONFIG, solver="gcln")[0].to_dict()
    gac = run_many(problems, FAST_CONFIG, solver="guess_and_check")[0].to_dict()
    assert set(gcln) == set(gac)
    _assert_schema(gcln["result"])
    _assert_schema(gac["result"])


def test_solve_result_invariant_accessor():
    result = SolveResult(solver="s", problem="p", solved=False)
    assert result.invariant(0) == "true"


# -- service: shared cache, events, per-solver config -------------------------


def test_service_shares_cache_across_solvers():
    service = InvariantService(FAST_CONFIG)
    service.solve(tiny_problem(), solver="guess_and_check")
    misses = service.cache_stats["trace_misses"]
    service.solve(tiny_problem(), solver="octahedral")
    after = service.cache_stats
    assert after["trace_misses"] == misses  # second solver hit the cache
    assert after["trace_hits"] > 0


def test_service_streams_stage_timing_events_for_solved_problem():
    """Acceptance: a subscriber observes per-stage timings on a solve."""
    service = InvariantService(FAST_CONFIG)
    events = []
    service.subscribe(events.append)
    result = service.solve(tiny_problem(), solver="gcln")
    assert result.solved
    kinds = {type(e) for e in events}
    assert {AttemptStarted, StageTimed, CandidateChecked, ProblemSolved} <= kinds
    staged = [e for e in events if isinstance(e, StageTimed)]
    assert {e.stage for e in staged} == set(STAGES)
    assert all(e.solver == "gcln" and e.problem == "tinyline" for e in staged)
    assert sum(e.seconds for e in staged) > 0
    done = [e for e in events if isinstance(e, ProblemSolved)]
    assert len(done) == 1 and done[0].solved
    # The same timings ride along in the result's wire format.
    timings = result.to_dict()["stage_timings"]
    assert timings["train"] > 0


def test_service_event_kind_filter_and_unsubscribe():
    service = InvariantService(FAST_CONFIG)
    only_staged = []
    unsubscribe = service.subscribe(only_staged.append, kinds=(StageTimed,))
    service.solve(tiny_problem(), solver="octahedral")
    assert only_staged and all(isinstance(e, StageTimed) for e in only_staged)
    unsubscribe()
    count = len(only_staged)
    service.solve(tiny_problem(), solver="octahedral")
    assert len(only_staged) == count


def test_event_bus_isolates_subscriber_errors():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: 1 / 0)
    bus.subscribe(seen.append)
    bus.emit(ProblemSolved(problem="p", solver="s"))
    assert bus.subscriber_errors == 1
    assert len(seen) == 1


def test_event_to_dict_is_tagged_and_serializable():
    event = StageTimed(
        problem="p", solver="s", stage="train", seconds=0.5, attempt=2
    )
    payload = event.to_dict()
    assert payload["event"] == "stage_timed"
    assert payload["stage"] == "train"
    json.dumps(payload)


def test_service_per_solver_config_override():
    service = InvariantService(FAST_CONFIG)
    service.configure("gcln", InferenceConfig(max_epochs=30, dropout_schedule=(0.5,)))
    assert service.config_for("gcln").max_epochs == 30
    assert service.config_for("octahedral") is FAST_CONFIG
    with pytest.raises(UnknownSolverError):
        service.configure("nosuch", FAST_CONFIG)


def test_service_solve_many_inline_shares_cache_and_events():
    service = InvariantService(FAST_CONFIG)
    done = []
    service.subscribe(done.append, kinds=(ProblemSolved,))
    records = service.solve_many(
        [tiny_problem("a1"), tiny_problem("a2")], solver="guess_and_check"
    )
    assert [r.name for r in records] == ["a1", "a2"]
    assert all(r.status == "ok" for r in records)
    assert [e.problem for e in done] == ["a1", "a2"]


def test_service_memo_replays_without_any_training(monkeypatch):
    """With memo_size set, a repeated solve returns the stored result:
    zero training epochs, zero attempts — only the completion event."""
    import repro.infer.pipeline as pipeline

    train_calls = []
    real_train = pipeline.train_gcln
    real_restarts = pipeline.train_gcln_restarts

    def counting_train(*args, **kwargs):
        train_calls.append(1)
        return real_train(*args, **kwargs)

    def counting_restarts(*args, **kwargs):
        train_calls.append(1)
        return real_restarts(*args, **kwargs)

    monkeypatch.setattr(pipeline, "train_gcln", counting_train)
    monkeypatch.setattr(pipeline, "train_gcln_restarts", counting_restarts)
    service = InvariantService(FAST_CONFIG, memo_size=4)
    events = []
    service.subscribe(events.append)

    problem = tiny_problem()
    first = service.solve(problem)
    assert first.solved
    trained_once = len(train_calls)
    assert trained_once > 0
    started = sum(1 for e in events if isinstance(e, AttemptStarted))
    assert started > 0

    second = service.solve(tiny_problem())  # same fingerprint, new object
    assert second is first  # the memoized result, not a re-solve
    assert len(train_calls) == trained_once  # ZERO new training calls
    assert (
        sum(1 for e in events if isinstance(e, AttemptStarted)) == started
    )  # no new attempts
    # ... but the completion event still fired for the memo hit
    assert sum(1 for e in events if isinstance(e, ProblemSolved)) == 2
    assert service.memo.stats()["hits"] == 1

    # a different config is a different fingerprint → real solve
    service.configure("gcln", InferenceConfig(max_epochs=30, dropout_schedule=(0.5,)))
    service.solve(tiny_problem())
    assert len(train_calls) > trained_once


def test_service_memo_off_by_default():
    service = InvariantService(FAST_CONFIG)
    assert service.memo is None
    a = service.solve(tiny_problem(), solver="guess_and_check")
    b = service.solve(tiny_problem(), solver="guess_and_check")
    assert a is not b  # no memoization without opting in


def test_solve_many_emits_completion_for_timeouts(monkeypatch):
    """Every record gets a ProblemSolved event, even on timeout."""
    import time

    service = InvariantService(FAST_CONFIG)
    done = []
    service.subscribe(done.append, kinds=(ProblemSolved,))
    monkeypatch.setattr(
        service, "solve", lambda problem, solver="gcln": time.sleep(30)
    )
    records = service.solve_many([tiny_problem()], timeout_seconds=0.2)
    assert records[0].status == "timeout"
    assert len(done) == 1
    assert done[0].problem == "tinyline"
    assert done[0].solved is False and done[0].attempts == 0


def test_rejected_atoms_mirror_checker_events():
    """LoopReport.rejected_atoms carries the checker's real verdicts."""
    for solver in ("octahedral", "gcln"):
        service = InvariantService(FAST_CONFIG)
        rejected_events = []
        service.subscribe(
            lambda e: rejected_events.append(e) if not e.sound else None,
            kinds=(CandidateChecked,),
        )
        result = service.solve(tiny_problem(), solver=solver)
        pairs = {
            (atom, reason)
            for loop in result.loops
            for atom, reason in loop.rejected_atoms
        }
        event_pairs = {(e.atom, e.reason) for e in rejected_events}
        assert {a for a, _ in pairs} == {e.atom for e in rejected_events}
        assert pairs <= event_pairs
        assert all(reason for _, reason in pairs)


# -- deprecation shim ---------------------------------------------------------


def test_infer_invariants_shim_warns_and_delegates():
    from repro.infer import infer_invariants

    with pytest.warns(DeprecationWarning, match="InvariantService"):
        result = infer_invariants(tiny_problem(), FAST_CONFIG)
    assert isinstance(result, InferenceResult)
    assert result.solved
    assert set(result.to_dict()["stage_timings"]) == set(STAGES)


def test_shim_survives_replaced_gcln_registration():
    """A replaced 'gcln' without a native result falls back to the engine."""
    from repro.infer import infer_invariants

    original = {e.name: e for e in solver_entries()}["gcln"]

    class NoRaw:
        name = "gcln"

        def solve(self, problem, *, config=None, cache=None, events=None):
            return SolveResult(solver="gcln", problem=problem.name, solved=False)

    register_solver("gcln", NoRaw, replace=True)
    try:
        with pytest.warns(DeprecationWarning):
            result = infer_invariants(tiny_problem(), FAST_CONFIG)
        assert isinstance(result, InferenceResult)
        assert result.solved
    finally:
        register_solver(
            "gcln",
            original.factory,
            description=original.description,
            capabilities=original.capabilities,
            replace=True,
        )


def test_engine_events_flow_without_service():
    """The engine emits to any sink, not just the service bus."""
    from repro.infer import InferenceEngine

    events = []
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # direct engine use must not warn
        result = InferenceEngine(
            tiny_problem(), FAST_CONFIG, events=events.append
        ).run()
    assert result.solved
    assert any(isinstance(e, AttemptStarted) for e in events)
    assert any(isinstance(e, StageTimed) for e in events)
