"""Tests for the parallel batch runner."""

import json
import time

import pytest

from repro.infer import InferenceConfig, Problem
from repro.infer import runner as runner_module
from repro.infer.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ProblemRecord,
    run_many,
    summarize,
)

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str, step: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


def test_run_many_aggregates_in_input_order():
    problems = [tiny_problem("alpha"), tiny_problem("beta", step=2)]
    records = run_many(problems, FAST_CONFIG, jobs=1)
    assert [r.name for r in records] == ["alpha", "beta"]
    assert all(r.status == STATUS_OK for r in records)
    assert all(r.result is not None for r in records)
    assert all(r.runtime_seconds > 0 for r in records)
    stats = summarize(records)
    assert stats["problems"] == 2
    assert stats["ok"] == 2
    assert stats["error"] == stats["timeout"] == 0


def test_run_many_records_errors_without_aborting_batch():
    bad = Problem(
        name="noloop",
        source="program noloop;\ninput n;\nx = n;",
        train_inputs=[{"n": 1}],
    )
    records = run_many([bad, tiny_problem("ok")], FAST_CONFIG, jobs=1)
    assert records[0].status == STATUS_ERROR
    assert "InferenceError" in records[0].error
    assert records[0].result is None
    assert records[1].status == STATUS_OK
    assert summarize(records)["error"] == 1


def test_run_many_honors_timeout(monkeypatch):
    """A problem exceeding the budget is recorded as a timeout."""

    def slow_solve(solver, problem, config, cache=None):
        time.sleep(30)

    monkeypatch.setattr(runner_module, "_solve_via_registry", slow_solve)
    start = time.perf_counter()
    records = run_many(
        [tiny_problem("slow"), tiny_problem("slow2")],
        FAST_CONFIG,
        jobs=1,
        timeout_seconds=0.3,
    )
    elapsed = time.perf_counter() - start
    assert [r.status for r in records] == [STATUS_TIMEOUT, STATUS_TIMEOUT]
    assert all("timed out" in r.error for r in records)
    assert elapsed < 10
    assert summarize(records)["timeout"] == 2


def test_run_many_parallel_pool():
    problems = [tiny_problem("p1"), tiny_problem("p2", step=3)]
    seen: list[str] = []
    records = run_many(
        problems, FAST_CONFIG, jobs=2, progress=lambda r: seen.append(r.name)
    )
    assert [r.name for r in records] == ["p1", "p2"]  # input order
    assert sorted(seen) == ["p1", "p2"]  # completion order, all reported
    assert all(r.status == STATUS_OK for r in records)


def test_records_serialize_to_json():
    records = run_many([tiny_problem("json1")], FAST_CONFIG, jobs=1)
    payload = json.dumps([r.to_dict() for r in records])
    decoded = json.loads(payload)
    assert decoded[0]["name"] == "json1"
    assert decoded[0]["status"] == STATUS_OK
    assert decoded[0]["result"]["problem"] == "json1"
    assert decoded[0]["result"]["solver"] == "gcln"
    assert "cache_stats" in decoded[0]["result"]
    assert "stage_timings" in decoded[0]["result"]


def test_run_many_dispatches_registered_baselines():
    """run_many(solver=...) runs a baseline under the same schema."""
    records = run_many(
        [tiny_problem("viareg")], FAST_CONFIG, jobs=1, solver="guess_and_check"
    )
    assert records[0].status == STATUS_OK
    assert records[0].solved
    assert records[0].result.solver == "guess_and_check"
    assert records[0].result.attempts == 1


def test_run_many_rejects_unknown_solver_up_front():
    from repro.api import UnknownSolverError

    with pytest.raises(UnknownSolverError, match="gcln"):
        run_many([tiny_problem("x")], FAST_CONFIG, solver="nosuch")


def test_run_many_rejects_solve_fn_with_pool():
    with pytest.raises(ValueError):
        run_many(
            [tiny_problem("x")],
            FAST_CONFIG,
            jobs=2,
            solve_fn=lambda p, c: None,
        )


def test_run_many_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_many([tiny_problem("x")], FAST_CONFIG, jobs=0)
    assert run_many([], FAST_CONFIG, jobs=4) == []


def test_run_many_rejects_non_positive_timeout():
    with pytest.raises(ValueError):
        run_many([tiny_problem("x")], FAST_CONFIG, timeout_seconds=0)
    with pytest.raises(ValueError):
        run_many([tiny_problem("x")], FAST_CONFIG, timeout_seconds=-1.0)


def test_solved_property_guards_missing_result():
    record = ProblemRecord(name="x", status=STATUS_TIMEOUT)
    assert not record.solved


def test_parallel_workers_share_disk_cache(tmp_path):
    """--cache-dir reaches pool workers: a second parallel run recovers
    traces/matrices from the shared spill instead of recomputing."""
    cache_dir = str(tmp_path / "spill")
    problems = lambda: [tiny_problem("ca", 2), tiny_problem("cb", 3)]  # noqa: E731
    first = run_many(problems(), FAST_CONFIG, jobs=2, cache_dir=cache_dir)
    assert all(r.status == STATUS_OK for r in first)
    second = run_many(problems(), FAST_CONFIG, jobs=2, cache_dir=cache_dir)
    assert all(r.status == STATUS_OK for r in second)
    hits = [r.result.cache_stats["disk_hits"] for r in second]
    assert all(h > 0 for h in hits), hits
    # Recovered entries must not change behavior: the warm run solves
    # exactly like the cold one (regression: pickled Monomial hashes).
    for cold, warm in zip(first, second):
        assert cold.solved == warm.solved
        assert cold.result.attempts == warm.result.attempts


def test_inline_run_honors_cache_dir(tmp_path):
    cache_dir = str(tmp_path / "spill")
    run_many([tiny_problem("ia")], FAST_CONFIG, jobs=1, cache_dir=cache_dir)
    second = run_many(
        [tiny_problem("ia")], FAST_CONFIG, jobs=1, cache_dir=cache_dir
    )
    assert second[0].result.cache_stats["disk_hits"] > 0


def test_pool_timeout_records_status_and_sane_runtime():
    """Under jobs > 1 the in-worker alarm produces timeout records with
    runtimes near the budget, not the full solve."""
    slow_config = InferenceConfig(max_epochs=500_000, dropout_schedule=(0.6,))
    start = time.perf_counter()
    records = run_many(
        [tiny_problem("t1"), tiny_problem("t2", step=2)],
        slow_config,
        jobs=2,
        timeout_seconds=1.0,
    )
    elapsed = time.perf_counter() - start
    assert [r.status for r in records] == [STATUS_TIMEOUT, STATUS_TIMEOUT]
    assert all(r.timeout_enforced for r in records)
    assert all(0.5 < r.runtime_seconds < 20 for r in records)
    assert elapsed < 60


def test_unenforceable_timeout_is_recorded(monkeypatch):
    """No SIGALRM (e.g. Windows): the run proceeds but the record says
    the budget was not applied."""
    import signal

    monkeypatch.delattr(signal, "SIGALRM")
    records = run_many(
        [tiny_problem("noalarm")], FAST_CONFIG, jobs=1, timeout_seconds=5.0
    )
    assert records[0].status == STATUS_OK
    assert records[0].timeout_enforced is False
    payload = records[0].to_dict()
    assert payload["timeout_enforced"] is False


def test_timeout_enforced_defaults_true_without_budget():
    records = run_many([tiny_problem("nobudget")], FAST_CONFIG, jobs=1)
    assert records[0].timeout_enforced is True
    assert records[0].to_dict()["timeout_enforced"] is True
