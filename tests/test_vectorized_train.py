"""Tests for the vectorized training core.

Numeric gradchecks (central differences) for every fused kernel, plus
the seed-equivalence guarantees: batched multi-restart training and the
stacked unit forward produce the same invariants as the sequential
reference paths for identical seeds.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, fused_gated_tconorm, fused_gated_tnorm, pbqu
from repro.autodiff.functional import gaussian, sigmoid
from repro.cln.model import (
    AtomicKind,
    GCLN,
    GCLNConfig,
    structured_inequality_units,
)
from repro.cln.extract import extract_equalities, extract_inequalities
from repro.cln.train import (
    train_gcln,
    train_gcln_restarts,
    train_units_independently,
)
from repro.sampling import normalize_rows
from tests.test_autodiff import check_grad


# -- fused kernel gradchecks -------------------------------------------------


def test_pbqu_gradcheck_spans_both_branches():
    t = Tensor(np.array([-2.0, -0.3, 0.4, 3.0]), requires_grad=True)
    check_grad(lambda: pbqu(t, 1.0, 50.0).sum(), t)


def test_pbqu_matches_eager_where_formulation():
    t = np.linspace(-3, 3, 13)
    c1, c2 = 1.0, 50.0
    got = pbqu(Tensor(t), c1, c2).data
    below = c1 * c1 / (t * t + c1 * c1)
    above = c2 * c2 / (t * t + c2 * c2)
    np.testing.assert_allclose(got, np.where(t >= 0, above, below))


def test_gaussian_box_gradcheck():
    x = Tensor(np.array([0.3, -0.7, 1.2]), requires_grad=True)
    sigma_box = np.array(0.8)
    check_grad(lambda: gaussian(x, sigma_box).sum(), x)


def test_sigmoid_fused_gradcheck():
    x = Tensor(np.array([-1.5, 0.0, 2.5]), requires_grad=True)
    check_grad(lambda: sigmoid(x).sum(), x)


def test_fused_gated_tnorm_gradcheck_values_and_gates():
    rng = np.random.default_rng(0)
    values = Tensor(rng.uniform(0.1, 0.9, size=(4, 3, 2)), requires_grad=True)
    gates = Tensor(rng.uniform(0.1, 0.9, size=(3, 2)), requires_grad=True)
    check_grad(lambda: fused_gated_tnorm(values, gates, axis=2).sum(), values)
    check_grad(lambda: fused_gated_tnorm(values, gates, axis=2).sum(), gates)


def test_fused_gated_tconorm_gradcheck_values_and_gates():
    rng = np.random.default_rng(1)
    values = Tensor(rng.uniform(0.1, 0.9, size=(4, 3, 2)), requires_grad=True)
    gates = Tensor(rng.uniform(0.1, 0.9, size=(3, 2)), requires_grad=True)
    check_grad(lambda: fused_gated_tconorm(values, gates, axis=2).sum(), values)
    check_grad(lambda: fused_gated_tconorm(values, gates, axis=2).sum(), gates)


def test_fused_gated_tnorm_with_zero_entries():
    """The exclusive-product gradient survives exact zeros."""
    values = Tensor(np.array([[0.0, 0.5, 1.0]]), requires_grad=True)
    gates = Tensor(np.array([1.0, 1.0, 1.0]))
    out = fused_gated_tnorm(values, gates, axis=1)
    out.sum().backward()
    np.testing.assert_allclose(values.grad, [[0.5, 0.0, 0.0]])


# -- stacked model equivalence ----------------------------------------------


def _relation_data():
    xs = np.arange(1, 13, dtype=float)
    return normalize_rows(
        np.stack([np.ones_like(xs), xs, 2 * xs, xs * xs], axis=1)
    )


def _eq_model(vectorized: bool, seed: int = 7) -> GCLN:
    config = GCLNConfig(
        n_clauses=3, max_epochs=300, dropout_rate=0.2, vectorized=vectorized
    )
    return GCLN(4, config, np.random.default_rng(seed), protected_terms=[0])


def test_batched_forward_matches_eager(rng):
    model = _eq_model(True)
    X = Tensor(np.random.default_rng(0).normal(size=(6, 4)))
    np.testing.assert_allclose(
        model.forward_batched(X).data, model.forward(X, 1.0).data, atol=1e-12
    )


def test_stacked_storage_is_shared_with_units():
    model = _eq_model(True)
    model.unit_weights.data[0, 0] = 42.0
    assert model.units_flat[0].weight.data[0] == 42.0
    model.units_flat[1].weight.data[:] = 0.5
    assert np.all(model.unit_weights.data[1] == 0.5)


def test_train_gcln_vectorized_matches_eager_invariants(sqrt1_data):
    states, basis, _raw, data = sqrt1_data
    atoms = {}
    for vectorized in (False, True):
        config = GCLNConfig(
            n_clauses=6, max_epochs=400, dropout_rate=0.4, vectorized=vectorized
        )
        model = GCLN(
            len(basis), config, np.random.default_rng(11), protected_terms=[0]
        )
        train_gcln(model, data)
        atoms[vectorized] = sorted(
            str(a) for a in extract_equalities(model, basis, states)
        )
    assert atoms[True] == atoms[False]


def test_train_units_seed_equivalence_batched_vs_sequential(sqrt1_data):
    """Acceptance: identical invariants from batched and sequential.

    The two paths differ only in BLAS kernel choice (per-unit gemv vs
    one gemm), whose ~1e-16/epoch rounding drift is chaotic under the
    training dynamics; at 100 epochs the trajectories agree to ~1e-12,
    so extraction — which rounds to rationals and validates exactly —
    must produce the same atoms.
    """
    states, basis, _raw, data = sqrt1_data
    term_vars = [m.variables for m in basis.monomials]
    term_degs = [m.degree for m in basis.monomials]
    epochs = 100
    results = {}
    atoms = {}
    weights = {}
    for batched in (False, True):
        config = GCLNConfig(max_epochs=epochs, vectorized=batched)
        units = structured_inequality_units(
            term_vars, term_degs, ["a", "s", "t", "n"], config,
            np.random.default_rng(5),
        )
        model = GCLN(
            len(basis), config, np.random.default_rng(5), units=units,
            kind=AtomicKind.GE,
        )
        results[batched] = train_units_independently(
            model, data, max_epochs=epochs, batched=batched
        )
        atoms[batched] = sorted(
            str(a) for a in extract_inequalities(model, basis, states, data)
        )
        weights[batched] = model.unit_weights.data.copy()
    assert atoms[True]  # extraction actually found bounds
    assert atoms[True] == atoms[False]
    np.testing.assert_allclose(weights[True], weights[False], atol=1e-9)
    assert results[True].epochs == results[False].epochs
    assert results[True].final_loss == pytest.approx(
        results[False].final_loss, rel=1e-6, abs=1e-8
    )


def test_multi_restart_matches_sequential_training_exactly():
    """Acceptance: batched restarts return the same TrainResult and
    parameters as training each model alone."""
    data = _relation_data()
    seeds = (1, 2, 3)
    batch_models = [_eq_model(True, seed=s) for s in seeds]
    solo_models = [_eq_model(True, seed=s) for s in seeds]
    outcomes = train_gcln_restarts(batch_models, data)
    for outcome, solo, batched in zip(
        outcomes, solo_models, batch_models
    ):
        reference = train_gcln(solo, data)
        assert outcome.error is None
        assert outcome.result.epochs == reference.epochs
        assert outcome.result.converged == reference.converged
        assert outcome.result.final_loss == pytest.approx(
            reference.final_loss, abs=1e-12
        )
        np.testing.assert_array_equal(
            batched.unit_weights.data, solo.unit_weights.data
        )
        np.testing.assert_array_equal(
            batched.and_gates.data, solo.and_gates.data
        )


def test_multi_restart_rejects_incapable_models(rng):
    config = GCLNConfig(vectorized=True)
    from repro.cln.model import AtomicUnit

    ragged = [
        [AtomicUnit(AtomicKind.EQ, np.ones(3, dtype=bool), rng, config)],
        [
            AtomicUnit(AtomicKind.EQ, np.ones(3, dtype=bool), rng, config),
            AtomicUnit(AtomicKind.EQ, np.ones(3, dtype=bool), rng, config),
        ],
    ]
    model = GCLN(3, config, rng, units=ragged)
    assert not model.batched_capable()
    from repro.errors import TrainingError

    with pytest.raises(TrainingError):
        train_gcln_restarts([model], np.ones((4, 3)))


def test_ragged_model_falls_back_to_eager_training(rng):
    """Hand-assembled ragged models still train via the legacy path."""
    config = GCLNConfig(max_epochs=50, vectorized=True)
    from repro.cln.model import AtomicUnit

    ragged = [
        [AtomicUnit(AtomicKind.EQ, np.ones(3, dtype=bool), rng, config)],
        [
            AtomicUnit(AtomicKind.EQ, np.ones(3, dtype=bool), rng, config),
            AtomicUnit(AtomicKind.EQ, np.ones(3, dtype=bool), rng, config),
        ],
    ]
    model = GCLN(3, config, rng, units=ragged)
    result = train_gcln(model, np.ones((4, 3)) * 0.1, max_epochs=50)
    assert np.isfinite(result.final_loss)
