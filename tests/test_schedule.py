"""Tests for the attempt scheduler (retry policy as data)."""

from repro.infer import InferenceConfig
from repro.infer.schedule import AttemptPlan, AttemptScheduler, build_schedule


def test_default_schedule_matches_paper_order():
    """Default config: the paper's dropout/seed retry schedule, in order."""
    plans = build_schedule(InferenceConfig(), fractional=False)
    assert [p.dropout for p in plans] == [0.6, 0.7, 0.5, 0.75]
    assert [p.seed for p in plans] == [1, 2, 3, 4]
    assert [p.index for p in plans] == [0, 1, 2, 3]
    assert all(p.fractional_interval is None for p in plans)


def test_fractional_interval_schedule():
    """§5.4: 0.5 then 0.25, staying at the finest once exhausted."""
    plans = build_schedule(InferenceConfig(), fractional=True)
    assert [p.fractional_interval for p in plans] == [0.5, 0.25, 0.25, 0.25]


def test_seeds_cycle_when_fewer_than_dropouts():
    config = InferenceConfig(dropout_schedule=(0.6, 0.7, 0.5), seeds=(7, 8))
    plans = build_schedule(config, fractional=False)
    assert [p.seed for p in plans] == [7, 8, 7]


def test_scheduler_yields_all_plans_when_never_stopped():
    scheduler = AttemptScheduler(InferenceConfig(), fractional=False)
    seen = list(scheduler)
    assert len(seen) == 4
    assert scheduler.attempts_made == 4
    assert not scheduler.stopped


def test_scheduler_early_stop():
    scheduler = AttemptScheduler(InferenceConfig(), fractional=False)
    seen: list[AttemptPlan] = []
    for plan in scheduler:
        seen.append(plan)
        if plan.index == 1:
            scheduler.stop()
    assert [p.index for p in seen] == [0, 1]
    assert scheduler.attempts_made == 2
    assert scheduler.stopped


def test_plans_are_frozen_value_objects():
    a = AttemptPlan(index=0, dropout=0.6, seed=1, fractional_interval=None)
    b = AttemptPlan(index=0, dropout=0.6, seed=1, fractional_interval=None)
    assert a == b and hash(a) == hash(b)


def test_iter_batches_first_attempt_runs_alone():
    scheduler = AttemptScheduler(InferenceConfig(), fractional=False)
    batches = list(scheduler.iter_batches(max_size=2))
    assert [len(b) for b in batches] == [1, 2, 1]
    assert [p.index for b in batches for p in b] == [0, 1, 2, 3]
    assert scheduler.attempts_made == 4


def test_iter_batches_max_size_one_is_sequential():
    scheduler = AttemptScheduler(InferenceConfig(), fractional=False)
    batches = list(scheduler.iter_batches(max_size=1))
    assert [len(b) for b in batches] == [1, 1, 1, 1]


def test_iter_batches_splits_on_interval_change():
    """Fractional schedule 0.5, 0.25, 0.25, 0.25: the interval change
    after attempt 1 starts a fresh batch because the data differs."""
    scheduler = AttemptScheduler(InferenceConfig(), fractional=True)
    batches = list(scheduler.iter_batches(max_size=4))
    intervals = [[p.fractional_interval for p in b] for b in batches]
    assert intervals == [[0.5], [0.25, 0.25, 0.25]]
    assert scheduler.attempts_made == 4


def test_iter_batches_respects_early_stop():
    scheduler = AttemptScheduler(InferenceConfig(), fractional=False)
    seen = []
    for batch in scheduler.iter_batches(max_size=2):
        seen.append(batch)
        scheduler.stop()
    assert len(seen) == 1 and len(seen[0]) == 1
    assert scheduler.attempts_made == 1
