"""Tests for the mini-language lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.lang.ast import Binary, Call, If, While
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty_expr, pretty_program


def test_tokenize_basic():
    tokens = tokenize("x = 12 + y;")
    kinds = [t.kind for t in tokens]
    assert kinds == ["ident", "op", "int", "op", "ident", "op", "eof"]


def test_tokenize_multichar_operators():
    tokens = tokenize("a <= b && c == d || !e")
    texts = [t.text for t in tokens if t.kind == "op"]
    assert texts == ["<=", "&&", "==", "||", "!"]


def test_tokenize_comments():
    tokens = tokenize("x = 1; // comment\ny = 2;")
    assert sum(1 for t in tokens if t.kind == "ident") == 2


def test_tokenize_reports_position():
    with pytest.raises(LexError) as err:
        tokenize("x = $;")
    assert "line 1" in str(err.value)


def test_parse_precedence():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.right, Binary) and expr.right.op == "*"


def test_parse_parentheses():
    expr = parse_expr("(1 + 2) * 3")
    assert isinstance(expr, Binary) and expr.op == "*"


def test_parse_comparison_and_bool():
    expr = parse_expr("x <= y && y < z || !b")
    assert isinstance(expr, Binary) and expr.op == "||"


def test_parse_call():
    expr = parse_expr("gcd(x, y)")
    assert isinstance(expr, Call)
    assert expr.func == "gcd" and len(expr.args) == 2


def test_parse_unary_minus():
    expr = parse_expr("-x + 1")
    assert isinstance(expr, Binary) and expr.op == "+"


def test_parse_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_expr("x + 1 y")


def test_parse_program_structure():
    program = parse_program(
        """
program demo;
input n;
assume (n >= 0);
x = 0;
while (x < n) { x = x + 1; }
assert (x == n);
"""
    )
    assert program.name == "demo"
    assert program.inputs == ["n"]
    assert len(program.loops) == 1
    assert len(program.assumes) == 1
    assert len(program.asserts) == 1


def test_parse_nested_loops_get_ordered_ids():
    program = parse_program(
        """
program nested;
input n;
i = 0;
while (i < n) {
  j = 0;
  while (j < i) { j = j + 1; }
  i = i + 1;
}
"""
    )
    assert [loop.loop_id for loop in program.loops] == [0, 1]
    outer, inner = program.loops
    assert isinstance(outer.body.statements[1], While)
    assert outer.body.statements[1] is inner


def test_parse_if_else_chain():
    program = parse_program(
        """
program branches;
input n;
x = 0;
if (n > 0) { x = 1; }
else { if (n < 0) { x = 2; } else { x = 3; } }
"""
    )
    top = program.body.statements[1]
    assert isinstance(top, If) and top.else_body is not None
    nested = top.else_body.statements[0]
    assert isinstance(nested, If) and nested.else_body is not None


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_program("program p;\nx = 1")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_program("program p;\nwhile (true) { x = 1;")


def test_pretty_roundtrip():
    source = """
program roundtrip;
input n, m;
assume (n >= 0);
x = 0; y = 1;
while (x < n) {
  if (x > m) { y = y * 2; }
  else { y = y + gcd(x, n); }
  x = x + 1;
}
assert (y >= 1);
"""
    program = parse_program(source)
    printed = pretty_program(program)
    reparsed = parse_program(printed)
    assert pretty_program(reparsed) == printed


def test_pretty_expr_minimal_parens():
    assert pretty_expr(parse_expr("(x + y) * z")) == "(x + y) * z"
    assert pretty_expr(parse_expr("x + y * z")) == "x + y * z"
