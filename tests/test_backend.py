"""Cross-backend equivalence tests for the compiled tape replay.

The closure walker (``backend="numpy"``) is the bitwise oracle: the
fused plan must reproduce its losses, gradients, and parameter updates
exactly (``np.array_equal``, not allclose) on random elementwise
chains and on the real G-CLN training graphs.  The numba backend is
only required to degrade gracefully — without numba installed it IS
the fused plan, so it inherits the bitwise guarantee; with numba the
JITted segments are validated by the same comparisons under allclose
in the dedicated CI job.
"""

import numpy as np
import pytest

from repro.autodiff import (
    Adam,
    Tape,
    Tensor,
    available_backends,
    exp,
    gaussian,
    log,
    maximum,
    minimum,
    numba_available,
    pbqu,
    relu,
    resolve_backend_name,
    sigmoid,
    sqrt,
    tanh,
    where,
)
from repro.autodiff.backend import (
    UnknownBackendError,
    compile_plan,
    exclusive_prod_into,
    get_backend,
)
from repro.autodiff.tensor import exclusive_prod
from repro.cln.model import (
    AtomicKind,
    GCLN,
    GCLNConfig,
    structured_inequality_units,
)
from repro.cln.train import train_gcln, train_units_independently
from repro.sampling import normalize_rows


# -- registry ----------------------------------------------------------------


def test_available_backends():
    assert available_backends() == ("auto", "fused", "numba", "numpy")


def test_unknown_backend_raises():
    with pytest.raises(UnknownBackendError):
        get_backend("bogus")
    with pytest.raises(UnknownBackendError):
        resolve_backend_name("bogus")


def test_resolve_auto_matches_numba_availability():
    expected = "numba" if numba_available() else "fused"
    assert resolve_backend_name("auto") == expected
    assert resolve_backend_name(None) == expected
    assert resolve_backend_name("fused") == "fused"


# -- random elementwise chain fuzz ------------------------------------------


def _random_chain_loss(leaves, sigma_box, rng):
    """A random bounded elementwise chain over the leaves."""
    a, b = leaves
    cur = sigmoid(a * 1.5 + b)
    ops = [
        lambda u: u + sigmoid(b),
        lambda u: u * (tanh(a) + 2.0),
        lambda u: u - gaussian(a, sigma_box) * 0.5,
        lambda u: u / (u * u + 1.5),
        lambda u: -u + 1.0,
        lambda u: abs(u - 0.5),
        lambda u: exp(-(u * u)),
        lambda u: log(u * u + 1.0),
        lambda u: sqrt(u * u + 0.25),
        lambda u: relu(u - 0.3),
        lambda u: pbqu(u, 1.0, 50.0),
        lambda u: maximum(u, sigmoid(b)),
        lambda u: minimum(u, tanh(a) + 1.5),
        lambda u: u ** 2,
        lambda u: where(lambda: u.data >= 0.4, u, sigmoid(a)),
    ]
    for idx in rng.integers(0, len(ops), size=8):
        cur = ops[int(idx)](cur)
    return (cur.sum() + (a * b).sum()) * 0.5


def _train_chain(backend, seed, steps=4):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    b = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    sigma_box = np.array(1.2)
    op_rng = np.random.default_rng(seed + 1000)
    opt = Adam([a, b], lr=0.05)
    tape = Tape(backend=backend)
    losses, grads = [], []
    for i in range(steps):
        opt.zero_grad()
        loss = tape.step(lambda: _random_chain_loss([a, b], sigma_box, op_rng))
        losses.append(float(loss.data))
        grads.append([a.grad.copy(), b.grad.copy()])
        opt.step()
        sigma_box[...] = 1.2 - 0.05 * i
    return losses, grads, [a.data.copy(), b.data.copy()], tape.stats()


@pytest.mark.parametrize("seed", range(5))
def test_fused_bitwise_on_random_chains(seed):
    ln, gn, pn, sn = _train_chain("numpy", seed)
    lf, gf, pf, sf = _train_chain("fused", seed)
    assert sn["active_backend"] == "numpy"
    assert sf["active_backend"] == "fused"
    assert sf["fallback_reason"] is None
    assert ln == lf
    for ga, gb in zip(gn, gf):
        for x, y in zip(ga, gb):
            assert np.array_equal(x, y)
    for x, y in zip(pn, pf):
        assert np.array_equal(x, y)


@pytest.mark.parametrize("seed", [0, 3])
def test_numba_backend_matches_reference(seed):
    """With numba absent the numba backend IS the fused plan (bitwise);
    with numba present JITted segments must still agree to allclose."""
    ln, gn, pn, _ = _train_chain("numpy", seed)
    lj, gj, pj, sj = _train_chain("numba", seed)
    assert sj["active_backend"] == "numba"
    if not numba_available():
        assert sj["jitted_segments"] == 0
        assert ln == lj
        for ga, gb in zip(gn, gj):
            for x, y in zip(ga, gb):
                assert np.array_equal(x, y)
    else:
        np.testing.assert_allclose(ln, lj, rtol=1e-12, atol=1e-12)
        for x, y in zip(pn, pj):
            np.testing.assert_allclose(x, y, rtol=1e-10, atol=1e-12)


# -- real training graphs ----------------------------------------------------


def _relation_data():
    xs = np.arange(1, 13, dtype=float)
    return normalize_rows(
        np.stack([np.ones_like(xs), xs, 2 * xs, xs * xs], axis=1)
    )


def _train_eq(backend):
    config = GCLNConfig(
        n_clauses=3, max_epochs=150, dropout_rate=0.2, backend=backend
    )
    model = GCLN(4, config, np.random.default_rng(7), protected_terms=[0])
    train_gcln(model, _relation_data())
    return [p.data.copy() for p in model.parameters()]


def test_gcln_training_bitwise_across_backends():
    ref = _train_eq("numpy")
    fused = _train_eq("fused")
    assert len(ref) == len(fused)
    for x, y in zip(ref, fused):
        assert np.array_equal(x, y)


def _train_units(backend):
    rng = np.random.default_rng(5)
    data = normalize_rows(
        np.stack(
            [np.ones(12), np.arange(1.0, 13.0), np.arange(1.0, 13.0) ** 2],
            axis=1,
        )
    )
    config = GCLNConfig(max_epochs=120, backend=backend)
    term_vars = [frozenset(), frozenset({"x"}), frozenset({"x"})]
    units = structured_inequality_units(
        term_vars, (0, 1, 2), ["x"], config, np.random.default_rng(3)
    )
    model = GCLN(
        3, config, np.random.default_rng(3), units=units, kind=AtomicKind.GE
    )
    train_units_independently(model, data)
    return model.unit_weights.data.copy()


def test_unit_training_bitwise_across_backends():
    assert np.array_equal(_train_units("numpy"), _train_units("fused"))


# -- plan internals ----------------------------------------------------------


@pytest.mark.parametrize("axis", [0, 1, -1])
def test_exclusive_prod_into_bitwise(axis):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(4, 5, 3))
    x[1, 2, 1] = 0.0  # zeros must match too
    x[0, 0, 0] = 0.0
    ref = exclusive_prod(x, axis)
    out = np.empty_like(x)
    exclusive_prod_into(x, axis % x.ndim, np.empty_like(x), np.empty_like(x), out)
    assert np.array_equal(ref, out)


def test_plan_recompiles_after_leaf_storage_swap():
    a = Tensor(np.linspace(-1, 1, 8), requires_grad=True)

    def build():
        return (sigmoid(a) * tanh(a)).sum()

    tape = Tape(backend="fused")
    tape.step(build)
    a.grad = None
    first = float(tape.step(build).data)
    assert tape.stats()["active_backend"] == "fused"
    # Swap the leaf's storage: the data guard must drop the stale plan.
    a.data = np.linspace(0.5, 2.0, 8)
    a.grad = None
    swapped = float(tape.step(build).data)
    expected = float(np.sum(
        (1.0 / (1.0 + np.exp(-a.data))) * np.tanh(a.data)
    ))
    assert swapped != first
    np.testing.assert_allclose(swapped, expected, rtol=1e-12)
    assert tape.stats()["replays"] == 2


def test_tape_stats_keys_and_segments():
    a = Tensor(np.ones(6), requires_grad=True)
    tape = Tape(backend="fused")
    tape.step(lambda: (sigmoid(a) * 2.0 + tanh(a)).sum())
    a.grad = None
    tape.step(lambda: (sigmoid(a) * 2.0 + tanh(a)).sum())
    stats = tape.stats()
    assert set(stats) == {
        "backend", "active_backend", "n_nodes", "replayable", "replays",
        "eager_steps", "fused_segments", "jitted_segments",
        "fused_bwd_segments", "jitted_bwd_segments", "compile_ms",
        "pool_hits", "pool_misses", "fallback_reason",
    }
    assert stats["fused_segments"] >= 1
    assert stats["compile_ms"] > 0.0
    if not numba_available():
        assert stats["jitted_segments"] == 0
        assert stats["jitted_bwd_segments"] == 0


def test_compile_plan_reports_failure_reason():
    # A root that does not require grad is never replayable, and an
    # empty tape cannot compile.
    assert compile_plan([], Tensor(1.0)) is None
    assert compile_plan.last_failure == "empty tape"


# -- numba codegen (pure-Python executable source) ---------------------------


def test_numba_codegen_source_runs_as_pure_python():
    """The generated per-element kernel must be valid plain Python that
    reproduces the recorded forward values — with or without numba."""
    import math

    from repro.autodiff import backend_numba

    a = Tensor(np.linspace(-2.0, 2.0, 9), requires_grad=True)
    nodes = []
    from repro.autodiff import tensor as tensor_mod

    tensor_mod._TAPE_SINK = nodes
    try:
        s = sigmoid(a)
        t = tanh(s)
        p = pbqu(t, 1.0, 50.0)
        r = relu(p - 0.25)
    finally:
        tensor_mod._TAPE_SINK = None
    expected = [n.data.copy() for n in (s, t, p, r)]

    persisted = {}

    def persist(node, tag):
        return persisted.setdefault(
            (id(node), tag), np.empty_like(node.data)
        )

    source, arrays, scalars = backend_numba.codegen_forward(
        [s, t, p, r], persist
    )
    ns = {"math": math}
    exec(compile(source, "<test-segment>", "exec"), ns)
    for n in (s, t, p, r):
        n.data.fill(np.nan)
    ns["_segment"](
        a.data.size,
        *[arr.reshape(-1) for arr in arrays],
        *[float(v) for v in scalars],
    )
    for node, want in zip((s, t, p, r), expected):
        np.testing.assert_allclose(node.data, want, rtol=1e-15)
    # pbqu's persisted k/denominator were filled for the backward pass.
    assert (id(p), "k") in persisted and (id(p), "den") in persisted
    np.testing.assert_allclose(
        persisted[(id(p), "k")] / persisted[(id(p), "den")], expected[2]
    )


def test_numba_version_consistent_with_availability():
    from repro.autodiff import numba_version

    if numba_available():
        assert isinstance(numba_version(), str)
    else:
        assert numba_version() is None
