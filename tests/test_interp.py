"""Tests for the interpreter and trace instrumentation."""

from fractions import Fraction

import pytest

from repro.errors import FuelExhausted, InterpError
from repro.lang import parse_program, run_program
from repro.lang.interp import Interpreter


def test_basic_execution(ps2_program):
    trace = run_program(ps2_program, {"k": 4})
    assert trace.final_state["x"] == 10
    assert trace.final_state["y"] == 4
    assert not trace.assertion_failures


def test_snapshots_logged_each_guard_test(ps2_program):
    trace = run_program(ps2_program, {"k": 3})
    # 3 passing guard tests + 1 failing exit test.
    assert len(trace.snapshots) == 4
    assert [s.guard_value for s in trace.snapshots] == [True, True, True, False]
    assert trace.snapshots[0].state["x"] == 0


def test_assume_violation_discards_trace(ps2_program):
    trace = run_program(ps2_program, {"k": -5})
    assert trace.assume_violated
    assert trace.snapshots == []


def test_assertion_failure_recorded():
    program = parse_program(
        "program bad;\ninput n;\nx = n;\nassert (x == n + 1);"
    )
    trace = run_program(program, {"n": 1})
    assert len(trace.assertion_failures) == 1


def test_missing_input_rejected(ps2_program):
    with pytest.raises(InterpError):
        run_program(ps2_program, {})


def test_unknown_input_rejected(ps2_program):
    with pytest.raises(InterpError):
        run_program(ps2_program, {"k": 1, "zz": 2})


def test_fuel_exhaustion():
    program = parse_program(
        "program spin;\ninput n;\nwhile (n >= 0) { n = n + 1; }"
    )
    with pytest.raises(FuelExhausted):
        run_program(program, {"n": 0}, fuel=100)


def test_division_produces_exact_fractions():
    program = parse_program("program d;\ninput a;\nx = a / 2;")
    trace = run_program(program, {"a": 5})
    assert trace.final_state["x"] == Fraction(5, 2)


def test_integral_fraction_normalized_to_int():
    program = parse_program("program d;\ninput a;\nx = a / 2;")
    trace = run_program(program, {"a": 6})
    assert trace.final_state["x"] == 3
    assert isinstance(trace.final_state["x"], int)


def test_division_by_zero_rejected():
    program = parse_program("program d;\ninput a;\nx = 1 / a;")
    with pytest.raises(InterpError):
        run_program(program, {"a": 0})


def test_mod_truncates_toward_zero():
    program = parse_program("program m;\ninput a, b;\nx = mod(a, b);")
    assert run_program(program, {"a": 7, "b": 3}).final_state["x"] == 1
    assert run_program(program, {"a": -7, "b": 3}).final_state["x"] == -1


def test_gcd_builtin():
    program = parse_program("program g;\ninput a, b;\nx = gcd(a, b);")
    assert run_program(program, {"a": 12, "b": 18}).final_state["x"] == 6
    assert run_program(program, {"a": 0, "b": 0}).final_state["x"] == 0


def test_unknown_function_rejected():
    program = parse_program("program f;\ninput a;\nx = nosuch(a);")
    with pytest.raises(InterpError):
        run_program(program, {"a": 1})


def test_boolean_guard_type_error():
    program = parse_program("program b;\ninput a;\nwhile (a) { a = 0; }")
    with pytest.raises(InterpError):
        run_program(program, {"a": 1})


def test_execute_block_steps_loop_body(sqrt1_program):
    interp = Interpreter(sqrt1_program)
    state = {"n": 30, "a": 2, "s": 9, "t": 5}
    after = interp.execute_block(sqrt1_program.loops[0].body, state)
    assert after == {"n": 30, "a": 3, "s": 16, "t": 7}
    # Original state untouched.
    assert state["a"] == 2


def test_fractional_inputs_execute_exactly(ps2_program):
    trace = run_program(ps2_program, {"k": Fraction(5, 2)})
    assert not trace.assume_violated
    assert trace.final_state["y"] == 3


def test_nested_loop_snapshot_tagging():
    program = parse_program(
        """
program nested;
input n;
i = 0; total = 0;
while (i < n) {
  j = 0;
  while (j < i) { j = j + 1; total = total + 1; }
  i = i + 1;
}
"""
    )
    trace = run_program(program, {"n": 3})
    outer = [s for s in trace.snapshots if s.loop_id == 0]
    inner = [s for s in trace.snapshots if s.loop_id == 1]
    assert len(outer) == 4  # i = 0,1,2 pass + exit
    assert len(inner) == 6  # entries at i=0,1,2 log 1, 2, 3 snapshots
    assert trace.final_state["total"] == 3
