"""Cross-module property tests tying the substrates together.

These check the semantic contracts the pipeline relies on:

* symbolic path updates agree with the interpreter stepping the loop
  body (the foundation of the symbolic inductiveness check);
* formula simplification preserves evaluation;
* fractional relaxation with zero offsets is semantics-preserving;
* normalization never changes which homogeneous constraints fit.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lang import parse_program
from repro.lang.analysis import extract_loop_paths
from repro.lang.interp import Interpreter
from repro.sampling import normalize_rows, relax_initializers
from repro.smt.formula import And, Atom, Not, Or
from repro.smt.simplify import simplify
from tests.test_polynomial import P

_SQRT_BODY_PROGRAM = parse_program(
    """
program sym;
input n;
a = 0; s = 1; t = 1;
while (s <= n) { a = a + 1; t = t + 2; s = s + t; }
"""
)

_BRANCHY_PROGRAM = parse_program(
    """
program branchy;
input n;
x = 0; y = 0; i = 0;
while (i < n) {
  if (x > y) { y = y + 2 * x; x = x - 1; }
  else { x = x + 3; y = y - x; }
  i = i + 1;
}
"""
)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(0, 20),
)
def test_symbolic_paths_match_interpreter(a, s, t, n):
    """Evaluating the path-update polynomials at a pre-state equals
    executing the loop body from that state."""
    program = _SQRT_BODY_PROGRAM
    loop = program.loops[0]
    paths = extract_loop_paths(loop)
    assert paths is not None and len(paths) == 1
    state = {"a": a, "s": s, "t": t, "n": n}
    interp = Interpreter(program)
    after = interp.execute_block(loop.body, state)
    for var, poly in paths[0].updates.items():
        assert poly.evaluate({k: Fraction(v) for k, v in state.items()}) == after[var]


@settings(max_examples=50, deadline=None)
@given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
def test_branching_paths_cover_interpreter(x, y, i):
    """Exactly one path's conditions hold, and its updates match."""
    program = _BRANCHY_PROGRAM
    loop = program.loops[0]
    paths = extract_loop_paths(loop)
    assert paths is not None and len(paths) == 2
    state = {"x": x, "y": y, "i": i, "n": 100}
    interp = Interpreter(program)
    after = interp.execute_block(loop.body, state)
    matching = []
    for path in paths:
        holds = all(
            bool(interp._eval(cond, dict(state))) == polarity
            for cond, polarity in path.conditions
        )
        if holds:
            matching.append(path)
    assert len(matching) == 1
    exact_state = {k: Fraction(v) for k, v in state.items()}
    for var, poly in matching[0].updates.items():
        assert poly.evaluate(exact_state) == after[var]


_atoms = st.sampled_from(
    [
        Atom(P("x - 1"), "=="),
        Atom(P("x + y"), ">="),
        Atom(P("y - 2"), "<"),
        Atom(P("x*y - 4"), "!="),
        Atom(P("x - y"), "<="),
    ]
)


def _formulas(depth: int):
    if depth == 0:
        return _atoms
    sub = _formulas(depth - 1)
    return st.one_of(
        _atoms,
        st.builds(Not, sub),
        st.builds(lambda a, b: And([a, b]), sub, sub),
        st.builds(lambda a, b: Or([a, b]), sub, sub),
    )


@settings(max_examples=100, deadline=None)
@given(_formulas(3), st.integers(-4, 4), st.integers(-4, 4))
def test_simplify_preserves_evaluation(formula, x, y):
    point = {"x": Fraction(x), "y": Fraction(y)}
    assert simplify(formula).evaluate(point) == formula.evaluate(point)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 12))
def test_fractional_zero_offset_preserves_semantics(k):
    program = parse_program(
        """
program frac;
input k;
assume (k >= 0);
x = 0; y = 0;
while (y < k) { y = y + 1; x = x + y * y; }
"""
    )
    relaxed, names = relax_initializers(program)
    zero = {name + "__frac": 0 for name in names}
    base = Interpreter(program).run({"k": k})
    lifted = Interpreter(relaxed).run({"k": k, **zero})
    assert base.final_state["x"] == lifted.final_state["x"]
    assert len(base.snapshots) == len(lifted.snapshots)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(-100, 100), min_size=3, max_size=3),
        min_size=1,
        max_size=6,
    ),
    st.lists(st.floats(-3, 3), min_size=3, max_size=3),
)
def test_normalization_preserves_constraint_satisfaction(rows, w):
    matrix = np.array(rows)
    weights = np.array(w)
    normalized = normalize_rows(matrix)

    # Row scaling by a positive constant preserves the sign of w·x.
    # The zero threshold must scale with each row's magnitude: a fixed
    # absolute cutoff classifies w·x ≈ 1e-12 differently before and
    # after the row is rescaled to norm 10.
    def signs(m: np.ndarray) -> np.ndarray:
        values = m @ weights
        scale = np.linalg.norm(m, axis=1) * np.linalg.norm(weights) + 1e-30
        return np.sign(np.where(np.abs(values) <= 1e-9 * scale, 0.0, values))

    mask = np.linalg.norm(matrix, axis=1) > 1e-9
    assert np.array_equal(signs(matrix)[mask], signs(normalized)[mask])
