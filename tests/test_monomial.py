"""Unit tests for repro.poly.monomial."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PolyError
from repro.poly.monomial import Monomial


def test_one_is_constant():
    assert Monomial.one().is_constant()
    assert Monomial.one().degree == 0
    assert str(Monomial.one()) == "1"


def test_var_construction():
    m = Monomial.var("x", 3)
    assert m.degree == 3
    assert m.exponent("x") == 3
    assert m.exponent("y") == 0
    assert str(m) == "x^3"


def test_zero_exponents_dropped():
    assert Monomial({"x": 0}) == Monomial.one()


def test_negative_exponent_rejected():
    with pytest.raises(PolyError):
        Monomial({"x": -1})


def test_non_integer_exponent_rejected():
    with pytest.raises(PolyError):
        Monomial({"x": 1.5})


def test_multiplication_merges_exponents():
    product = Monomial.var("x") * Monomial({"x": 1, "y": 2})
    assert product == Monomial({"x": 2, "y": 2})


def test_division():
    numerator = Monomial({"x": 3, "y": 1})
    denominator = Monomial({"x": 1})
    assert numerator / denominator == Monomial({"x": 2, "y": 1})


def test_division_failure():
    with pytest.raises(PolyError):
        Monomial.var("x") / Monomial.var("y")


def test_divides():
    assert Monomial.var("x").divides(Monomial({"x": 2, "y": 1}))
    assert not Monomial.var("y", 2).divides(Monomial({"y": 1}))


def test_graded_lex_order_degree_first():
    assert Monomial.var("z") < Monomial({"a": 2})
    assert Monomial.one() < Monomial.var("a")


def test_hash_and_equality():
    assert hash(Monomial({"x": 1, "y": 2})) == hash(Monomial({"y": 2, "x": 1}))
    assert Monomial({"x": 1}) != Monomial({"x": 2})


def test_variables_property():
    assert Monomial({"x": 1, "y": 2}).variables == frozenset({"x", "y"})


@given(
    st.dictionaries(
        st.sampled_from(["x", "y", "z"]), st.integers(0, 5), max_size=3
    ),
    st.dictionaries(
        st.sampled_from(["x", "y", "z"]), st.integers(0, 5), max_size=3
    ),
)
def test_multiplication_commutative(p1, p2):
    a, b = Monomial(p1), Monomial(p2)
    assert a * b == b * a


@given(
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(0, 4), max_size=2),
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(0, 4), max_size=2),
)
def test_product_degree_adds(p1, p2):
    a, b = Monomial(p1), Monomial(p2)
    assert (a * b).degree == a.degree + b.degree


@given(
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(0, 4), max_size=2),
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(1, 3), max_size=2),
)
def test_division_inverts_multiplication(p1, p2):
    a, b = Monomial(p1), Monomial(p2)
    assert (a * b) / b == a


def test_pickle_roundtrip_rehashes_across_hash_seeds(tmp_path):
    """A monomial pickled under another process's PYTHONHASHSEED must
    hash like a freshly built equal monomial here.

    Regression: Monomial cached ``hash(self._powers)`` in a slot and
    the default slot pickling preserved it, so TraceCache disk spills
    written by another process carried stale hashes — equal monomials
    then missed every dict/set lookup and cached benchmark reruns
    silently produced different invariants.
    """
    import os
    import pickle
    import subprocess
    import sys

    script = (
        "import pickle, sys\n"
        "from repro.poly.monomial import Monomial\n"
        "with open(sys.argv[1], 'wb') as handle:\n"
        "    pickle.dump(Monomial({'x': 2, 'y': 1}), handle)\n"
    )
    fresh = Monomial({"x": 2, "y": 1})
    # Two distinct explicit seeds: at most one can coincide with this
    # process's randomized seed.
    for seed in ("1", "2"):
        path = tmp_path / f"mono_{seed}.pkl"
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p] 
        )
        subprocess.run(
            [sys.executable, "-c", script, str(path)], env=env, check=True
        )
        with open(path, "rb") as handle:
            loaded = pickle.load(handle)
        assert loaded == fresh
        assert hash(loaded) == hash(fresh)
        assert loaded in {fresh}
        assert {loaded: 1}[fresh] == 1


def test_pickle_roundtrip_all_protocols_including_constant():
    """Protocols 0/1 skip __setstate__ for falsy states; the constant
    monomial's state must therefore never be falsy."""
    import pickle

    for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
        for mono in (Monomial.one(), Monomial({"x": 2, "y": 1})):
            loaded = pickle.loads(pickle.dumps(mono, protocol=protocol))
            assert loaded == mono
            assert hash(loaded) == hash(mono)
