"""Tests for the HTTP front end: protocol, admission, dedup, SSE, server."""

import asyncio
import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    AttemptStarted,
    EventBus,
    InvariantService,
    ProblemSolved,
    StageTimed,
)
from repro.dist.wire import problem_to_dict
from repro.infer import InferenceConfig, Problem
from repro.infer.runner import STATUS_ERROR, STATUS_OK, ProblemRecord, run_many
from repro.serve.admission import AdmissionController
from repro.serve.app import InvariantServer
from repro.serve.dedup import InflightDeduper
from repro.serve.executor import InProcessExecutor, QueueExecutor
from repro.serve.protocol import (
    ProtocolError,
    parse_solve_request,
    solve_response,
)
from repro.serve.stream import EventStream, sse_frame
from repro.utils.fingerprint import problem_fingerprint

FAST_CONFIG = InferenceConfig(max_epochs=60, dropout_schedule=(0.6,))


def tiny_problem(name: str = "srv", step: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: [f"x == {step} * i"]},
    )


# -- protocol ------------------------------------------------------------------


def test_parse_rejects_malformed_bodies():
    for bad in [b"not json", b"[]", b"{}", b'{"suite": "nla"}']:
        with pytest.raises(ProtocolError):
            parse_solve_request(bad)
    with pytest.raises(ProtocolError, match="unknown suite"):
        parse_solve_request(b'{"suite": "nope", "problem": "ps2"}')
    with pytest.raises(ProtocolError, match="available"):
        parse_solve_request(
            b'{"suite": "nla", "problem": "ps2", "solver": "nope"}'
        )


def test_parse_suite_reference_and_inline_agree():
    by_ref = parse_solve_request(b'{"suite": "nla", "problem": "ps2"}')
    assert by_ref.problem.name == "ps2" and by_ref.solver == "gcln"
    inline_body = json.dumps(
        {"problem": problem_to_dict(by_ref.problem), "solver": "numinv"}
    ).encode()
    inline = parse_solve_request(inline_body)
    assert inline.solver == "numinv"
    assert problem_to_dict(inline.problem) == problem_to_dict(by_ref.problem)


def test_parse_request_config_roundtrips():
    body = json.dumps(
        {
            "suite": "nla",
            "problem": "ps2",
            "config": {"max_epochs": 42},
        }
    ).encode()
    request = parse_solve_request(body)
    assert request.config.max_epochs == 42


def test_solve_response_schema():
    problem = tiny_problem()
    fp = problem_fingerprint(problem, "gcln", FAST_CONFIG)
    [record] = run_many([problem], FAST_CONFIG)
    response = solve_response(fp, record, "gcln")
    assert response["id"] == fp[:16]
    assert response["status"] == STATUS_OK
    assert response["solved"] is True
    assert response["memo"] is False and response["dedup"] is False
    assert response["result"]["solver"] == "gcln"
    json.dumps(response)  # must be pure JSON


# -- admission ------------------------------------------------------------------


def test_token_bucket_rate_limits_per_client():
    clock = [0.0]
    ctl = AdmissionController(
        rate=1.0, burst=2, max_inflight=0, clock=lambda: clock[0]
    )
    assert ctl.admit("a") == (0, 0.0)
    assert ctl.admit("a") == (0, 0.0)
    status, retry = ctl.admit("a")
    assert status == 429 and retry == pytest.approx(1.0)
    # an unrelated client has its own bucket
    assert ctl.admit("b")[0] == 0
    # tokens refill with time
    clock[0] = 1.5
    assert ctl.admit("a")[0] == 0
    assert ctl.stats()["rejected_rate"] == 1


def test_inflight_cap_returns_503_until_release():
    ctl = AdmissionController(rate=0, max_inflight=2)
    assert ctl.admit("a")[0] == 0
    assert ctl.admit("b")[0] == 0
    status, retry = ctl.admit("c")
    assert status == 503 and retry > 0
    ctl.release()
    assert ctl.admit("c")[0] == 0
    assert ctl.stats()["rejected_capacity"] == 1


# -- dedup ----------------------------------------------------------------------


def test_dedup_collapses_concurrent_identical_requests():
    async def scenario():
        dedup = InflightDeduper()
        calls = []

        async def work():
            calls.append(1)
            await asyncio.sleep(0.05)
            return "outcome"

        results = await asyncio.gather(
            *(dedup.run("key", work) for _ in range(8))
        )
        return calls, results, dedup

    calls, results, dedup = asyncio.run(scenario())
    assert len(calls) == 1
    assert all(outcome == "outcome" for outcome, _ in results)
    assert sum(1 for _, joined in results if not joined) == 1
    assert dedup.stats() == {"inflight": 0, "led": 1, "joined": 7}


def test_dedup_failure_fans_out_and_clears():
    async def scenario():
        dedup = InflightDeduper()

        async def boom():
            await asyncio.sleep(0.02)
            raise RuntimeError("solver exploded")

        waiters = await asyncio.gather(
            *(dedup.run("k", boom) for _ in range(3)), return_exceptions=True
        )
        assert all(isinstance(w, RuntimeError) for w in waiters)
        assert len(dedup) == 0  # cleared: the key is retryable

        async def fine():
            return 42

        outcome, joined = await dedup.run("k", fine)
        assert outcome == 42 and not joined

    asyncio.run(scenario())


def test_dedup_survives_waiter_cancellation():
    """A cancelled client (leader included) must not kill the shared solve."""

    async def scenario():
        dedup = InflightDeduper()
        finished = asyncio.Event()

        async def work():
            await asyncio.sleep(0.05)
            finished.set()
            return "done"

        leader = asyncio.ensure_future(dedup.run("k", work))
        await asyncio.sleep(0.01)
        follower = asyncio.ensure_future(dedup.run("k", work))
        await asyncio.sleep(0.01)
        leader.cancel()
        outcome, joined = await follower
        assert outcome == "done" and joined
        assert finished.is_set()

    asyncio.run(scenario())


# -- SSE stream ------------------------------------------------------------------


def test_sse_frame_format():
    frame = sse_frame("stage_timed", {"event": "stage_timed", "seconds": 1.5})
    text = frame.decode()
    assert text.startswith("event: stage_timed\ndata: ")
    assert text.endswith("\n\n")
    payload = json.loads(text.split("data: ", 1)[1])
    assert payload == {"event": "stage_timed", "seconds": 1.5}


def _event(i: int) -> StageTimed:
    return StageTimed(problem="p", solver="s", stage="train", seconds=float(i))


def test_event_stream_orders_and_drains():
    async def scenario():
        stream = EventStream(asyncio.get_running_loop())
        for i in range(3):
            stream.publish(_event(i))
        stream.close()
        await asyncio.sleep(0)  # let call_soon_threadsafe callbacks run
        frames = await stream.drain()
        seconds = [
            json.loads(f.decode().split("data: ", 1)[1])["seconds"]
            for f in frames
        ]
        assert seconds == [0.0, 1.0, 2.0]
        assert stream.closed
        assert await stream.drain() == []

    asyncio.run(scenario())


def test_event_stream_overflow_drops_oldest_and_reports():
    async def scenario():
        stream = EventStream(asyncio.get_running_loop(), max_pending=3)
        for i in range(5):
            stream.publish(_event(i))
        await asyncio.sleep(0)
        frames = await stream.drain()
        kinds = [f.decode().split("\n", 1)[0] for f in frames]
        assert kinds[0] == "event: dropped"  # loss reported first, in-order
        dropped = json.loads(frames[0].decode().split("data: ", 1)[1])
        assert dropped["count"] == 2
        assert stream.dropped_total == 2
        seconds = [
            json.loads(f.decode().split("data: ", 1)[1])["seconds"]
            for f in frames[1:]
        ]
        assert seconds == [2.0, 3.0, 4.0]  # oldest were dropped

    asyncio.run(scenario())


def test_event_stream_publish_from_thread():
    async def scenario():
        stream = EventStream(asyncio.get_running_loop())

        def producer():
            for i in range(20):
                stream.publish(_event(i))
            stream.close()

        thread = threading.Thread(target=producer)
        thread.start()
        got = []
        while not stream.closed:
            got.extend(await stream.drain(timeout=1.0))
        thread.join()
        assert len(got) == 20

    asyncio.run(scenario())


# -- EventBus thread-safety -------------------------------------------------------


def test_event_bus_concurrent_emit_subscribe_unsubscribe():
    bus = EventBus()
    received = []
    stop = threading.Event()
    errors = []

    def emitter():
        while not stop.is_set():
            bus.emit(_event(0))

    def churner():
        try:
            while not stop.is_set():
                unsubscribe = bus.subscribe(received.append)
                unsubscribe()
        except Exception as exc:  # noqa: BLE001 — the test assertion
            errors.append(exc)

    threads = [threading.Thread(target=emitter) for _ in range(2)] + [
        threading.Thread(target=churner) for _ in range(2)
    ]
    for t in threads:
        t.start()
    time.sleep(0.3)
    stop.set()
    for t in threads:
        t.join()
    assert errors == []
    assert bus.subscriber_errors == 0
    assert len(bus) == 0  # every subscription was cleanly removed


def test_event_bus_callback_may_unsubscribe_itself_during_emit():
    bus = EventBus()
    seen = []
    unsubscribe_holder = {}

    def once(event):
        seen.append(event)
        unsubscribe_holder["u"]()

    unsubscribe_holder["u"] = bus.subscribe(once)
    bus.emit(_event(1))
    bus.emit(_event(2))
    assert len(seen) == 1
    assert bus.subscriber_errors == 0


# -- the HTTP server --------------------------------------------------------------


class StubExecutor:
    """Canned records + call counting, optionally slow."""

    mode = "stub"

    def __init__(self, delay: float = 0.0, fail: bool = False):
        self.delay = delay
        self.fail = fail
        self.calls = 0
        self._lock = threading.Lock()

    async def solve(self, request, fingerprint):
        with self._lock:
            self.calls += 1
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail:
            return ProblemRecord(
                name=request.problem.name,
                status=STATUS_ERROR,
                error="stub failure",
            )
        return ProblemRecord(
            name=request.problem.name, status=STATUS_OK, runtime_seconds=0.01
        )

    def describe(self):
        return {"mode": self.mode}

    def close(self):
        pass


class ServerHarness:
    """Runs an InvariantServer on a private loop thread; plain-HTTP client."""

    def __init__(self, server: InvariantServer):
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start("127.0.0.1", 0))
        self.loop.run_forever()

    def __enter__(self):
        self._thread.start()
        deadline = time.time() + 5
        while self.server._server is None:
            if time.time() > deadline:
                raise TimeoutError("server did not start")
            time.sleep(0.01)
        self.base = f"http://127.0.0.1:{self.server.port}"
        return self

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        ).result(timeout=5)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()

    def request(self, path, body=None, method=None, headers=None):
        """(status, parsed JSON) for one request; errors are not raised."""
        req = urllib.request.Request(
            self.base + path,
            data=body,
            method=method or ("POST" if body is not None else "GET"),
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read() or b"null")
        except urllib.error.HTTPError as err:
            payload = err.read()
            return err.code, json.loads(payload) if payload else None

    def sse(self, path, body):
        """All SSE frames of one streamed solve, as (kind, payload) pairs."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=60
        )
        try:
            conn.request("POST", path, body=body)
            resp = conn.getresponse()
            assert resp.status == 200, resp.read()
            assert resp.getheader("Content-Type", "").startswith(
                "text/event-stream"
            )
            text = resp.read().decode()
        finally:
            conn.close()
        frames = []
        for block in text.strip().split("\n\n"):
            lines = dict(
                line.split(": ", 1) for line in block.splitlines() if line
            )
            frames.append((lines["event"], json.loads(lines["data"])))
        return frames


def stub_server(**kwargs) -> tuple[InvariantServer, StubExecutor]:
    service = InvariantService(FAST_CONFIG)
    executor = kwargs.pop("executor", None) or StubExecutor(
        delay=kwargs.pop("delay", 0.0)
    )
    server = InvariantServer(
        service,
        executor,
        admission=kwargs.pop(
            "admission", AdmissionController(rate=0, max_inflight=0)
        ),
        **kwargs,
    )
    return server, executor


def solve_body(problem: Problem, **extra) -> bytes:
    return json.dumps({"problem": problem_to_dict(problem), **extra}).encode()


def test_http_basic_endpoints_and_errors():
    server, _ = stub_server()
    with ServerHarness(server) as h:
        status, payload = h.request("/v1/solvers")
        assert status == 200
        assert {s["name"] for s in payload["solvers"]} >= {"gcln", "numinv"}

        status, payload = h.request("/v1/stats")
        assert status == 200 and payload["requests"] >= 1

        status, payload = h.request("/nope")
        assert status == 404
        status, payload = h.request("/v1/solve")  # GET on a POST route
        assert status == 405
        status, payload = h.request("/v1/solve", body=b"not json")
        assert status == 400 and "JSON" in payload["error"]
        status, payload = h.request("/v1/results/missing")
        assert status == 404


def test_http_solve_memo_and_result_store():
    server, executor = stub_server()
    problem = tiny_problem()
    with ServerHarness(server) as h:
        status, first = h.request("/v1/solve", body=solve_body(problem))
        assert status == 200
        assert first["status"] == STATUS_OK
        assert first["memo"] is False and first["dedup"] is False
        assert executor.calls == 1

        status, second = h.request("/v1/solve", body=solve_body(problem))
        assert second["memo"] is True
        assert executor.calls == 1  # replayed, not re-solved

        status, fetched = h.request("/v1/results/" + first["id"])
        assert status == 200 and fetched["fingerprint"] == first["fingerprint"]

        # a different problem is a different fingerprint → fresh solve
        status, third = h.request("/v1/solve", body=solve_body(tiny_problem(step=2)))
        assert third["memo"] is False and executor.calls == 2


def test_http_error_records_are_not_memoized():
    server, executor = stub_server(executor=StubExecutor(fail=True))
    problem = tiny_problem()
    with ServerHarness(server) as h:
        status, first = h.request("/v1/solve", body=solve_body(problem))
        assert status == 200 and first["status"] == STATUS_ERROR
        assert "stub failure" in first["error"]
        status, second = h.request("/v1/solve", body=solve_body(problem))
        assert second["memo"] is False  # errors retry
        assert executor.calls == 2


def test_http_concurrent_identical_requests_solve_once():
    server, executor = stub_server(delay=0.3)
    problem = tiny_problem()
    body = solve_body(problem)
    with ServerHarness(server) as h:
        results = []

        def post():
            results.append(h.request("/v1/solve", body=body))

        threads = [threading.Thread(target=post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert executor.calls == 1  # exactly one solve for six requests
        statuses = [status for status, _ in results]
        assert statuses == [200] * 6
        dedup_flags = sorted(payload["dedup"] for _, payload in results)
        assert dedup_flags.count(False) == 1  # one leader
        assert server.dedup.stats()["joined"] == 5


def test_http_rate_limit_and_capacity():
    server, _ = stub_server(
        admission=AdmissionController(rate=0.001, burst=2, max_inflight=0),
        delay=0.0,
    )
    problem = tiny_problem()
    with ServerHarness(server) as h:
        headers = {"X-Client-Id": "impatient"}
        assert h.request("/v1/solve", body=solve_body(problem), headers=headers)[0] == 200
        assert h.request("/v1/solve", body=solve_body(problem), headers=headers)[0] == 200
        status, payload = h.request(
            "/v1/solve", body=solve_body(problem), headers=headers
        )
        assert status == 429 and "rate" in payload["error"]
        # other clients are unaffected
        assert h.request(
            "/v1/solve", body=solve_body(problem), headers={"X-Client-Id": "calm"}
        )[0] == 200


def test_http_capacity_503_with_retry_after():
    server, _ = stub_server(
        admission=AdmissionController(rate=0, max_inflight=1), delay=0.5
    )
    # distinct problems so dedup can't collapse them
    bodies = [solve_body(tiny_problem(step=s)) for s in (1, 2)]
    with ServerHarness(server) as h:
        statuses = {}

        def post(i):
            statuses[i] = h.request("/v1/solve", body=bodies[i])[0]

        t = threading.Thread(target=post, args=(0,))
        t.start()
        time.sleep(0.15)  # first request is now in flight
        status_second = h.request("/v1/solve", body=bodies[1])[0]
        t.join()
        assert statuses[0] == 200
        assert status_second == 503


def test_http_sse_stream_lifecycle(tmp_path):
    """A real in-process solve streams live events ending in
    problem_solved then the terminal result frame."""
    service = InvariantService(FAST_CONFIG)
    server = InvariantServer(
        service,
        InProcessExecutor(service, threads=2),
        admission=AdmissionController(rate=0, max_inflight=0),
    )
    problem = tiny_problem("ssetest")
    with ServerHarness(server) as h:
        frames = h.sse("/v1/solve?stream=1", solve_body(problem))
        kinds = [kind for kind, _ in frames]
        assert kinds[0] == "status"
        assert frames[0][1]["state"] == "started"
        assert "attempt_started" in kinds
        assert "stage_timed" in kinds
        assert kinds[-2] == "problem_solved"
        assert kinds[-1] == "result"
        result = frames[-1][1]
        assert result["status"] == STATUS_OK and result["solved"] is True

        # memo replay still terminates the stream correctly
        frames2 = h.sse("/v1/solve?stream=1", solve_body(problem))
        kinds2 = [kind for kind, _ in frames2]
        assert kinds2[0] == "status" and frames2[0][1]["state"] == "memo"
        assert kinds2[-2:] == ["problem_solved", "result"]
        assert frames2[-1][1]["memo"] is True


def test_http_inprocess_record_equivalence():
    """The HTTP front end returns the same SolveResult as run_many,
    modulo timing and cache counters."""
    problem = tiny_problem("equiv")
    service = InvariantService(FAST_CONFIG)
    server = InvariantServer(
        service,
        InProcessExecutor(service, threads=1),
        admission=AdmissionController(rate=0, max_inflight=0),
    )
    with ServerHarness(server) as h:
        status, response = h.request("/v1/solve", body=solve_body(problem))
    assert status == 200
    [direct] = run_many([tiny_problem("equiv")], FAST_CONFIG)
    via_http = response["result"]
    expected = direct.result.to_dict()
    for volatile in ("runtime_seconds", "stage_timings", "cache_stats"):
        via_http.pop(volatile)
        expected.pop(volatile)
    assert via_http == expected


def test_http_queue_mode_record_equivalence(tmp_path):
    """Queue-backed serving: the server enqueues, a worker drains, and
    the HTTP response matches a sequential run."""
    from repro.dist import Worker, WorkQueue

    queue_dir = str(tmp_path / "q")
    service = InvariantService(FAST_CONFIG)
    executor = QueueExecutor(queue_dir, solver="gcln", config=FAST_CONFIG)
    server = InvariantServer(
        service,
        executor,
        admission=AdmissionController(rate=0, max_inflight=0),
    )
    problem = tiny_problem("qequiv")

    stop = threading.Event()

    def drain():
        worker = Worker(WorkQueue.open(queue_dir), poll_seconds=0.05)
        while not stop.is_set():
            worker.run(max_items=1)
            time.sleep(0.05)

    worker_thread = threading.Thread(target=drain, daemon=True)
    with ServerHarness(server) as h:
        worker_thread.start()
        try:
            status, response = h.request("/v1/solve", body=solve_body(problem))
            assert status == 200
            assert response["status"] == STATUS_OK

            # a repeat is answered from the journal/memo without new items
            status2, again = h.request("/v1/solve", body=solve_body(problem))
            assert again["memo"] is True

            # solver overrides conflict with the queue meta → 400
            status3, err = h.request(
                "/v1/solve", body=solve_body(problem, solver="numinv")
            )
            assert status3 == 400 and "queue" in err["error"]

            # streamed queue solve still ends problem_solved → result
            frames = h.sse(
                "/v1/solve?stream=1", solve_body(tiny_problem("qsse", step=2))
            )
            kinds = [kind for kind, _ in frames]
            assert kinds[-2:] == ["problem_solved", "result"]
        finally:
            stop.set()
    worker_thread.join(timeout=10)

    [direct] = run_many([tiny_problem("qequiv")], FAST_CONFIG)
    via_http = response["result"]
    expected = direct.result.to_dict()
    for volatile in ("runtime_seconds", "stage_timings", "cache_stats"):
        via_http.pop(volatile)
        expected.pop(volatile)
    assert via_http == expected


def test_stats_shape():
    server, _ = stub_server()
    with ServerHarness(server) as h:
        h.request("/v1/solve", body=solve_body(tiny_problem()))
        _, stats = h.request("/v1/stats")
    assert stats["executor"]["mode"] == "stub"
    assert {"admitted", "rejected_rate", "rejected_capacity"} <= set(
        stats["admission"]
    )
    assert {"led", "joined", "inflight"} <= set(stats["dedup"])
    assert {"hits", "misses", "entries"} <= set(stats["memo"])
    assert "trace_hits" in stats["cache"]
