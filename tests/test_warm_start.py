"""Warm-start engine tests.

Covers the three reuse layers this subsystem adds on top of the taped
trainers — cross-attempt tape/plan pooling, gate-state carry-over, and
best-member seeding — plus the backward-segment codegen the numba
backend JITs.  The load-bearing guarantees:

* Adopting a pooled tape is **bitwise-transparent**: a pooled training
  call produces exactly the weights/gates/loss/epochs of a fresh
  record+compile run with the same seeds, on every backend.
* With ``warm_start`` off (the default), nothing changes: the pool is
  value-transparent and the seeding/carry-over code never runs.
* Warm solves never spend more training epochs than cold solves.
"""

import numpy as np
import pytest

from repro.api import InvariantService
from repro.autodiff import TapePool, numba_available
from repro.autodiff import backend_numba
from repro.cln.model import GCLN, GCLNConfig
from repro.cln.train import train_gcln, train_gcln_restarts
from repro.infer import InferenceConfig, Problem
from repro.sampling import normalize_rows

_NO_EARLY_STOP = 10**9

BACKENDS = ["numpy", "fused", "numba"]


def _data(samples: int = 12, n_terms: int = 4, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return normalize_rows(np.abs(rng.normal(size=(samples, n_terms))) + 0.5)


def _model(seed: int = 7, backend: str = "fused", **overrides) -> GCLN:
    config = GCLNConfig(
        n_clauses=3, max_epochs=120, dropout_rate=0.2, backend=backend,
        **overrides,
    )
    return GCLN(4, config, np.random.default_rng(seed), protected_terms=[0])


def _skip_unless_available(backend: str) -> None:
    if backend == "numba" and not numba_available():
        pytest.skip("numba not importable in this environment")


# -- tape/plan pooling -------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_pooled_tape_training_is_bitwise_identical(backend):
    """A pool hit must replay into exactly the fresh-record results."""
    _skip_unless_available(backend)
    data = _data()
    fresh = _model(seed=9, backend=backend)
    ref = train_gcln(
        fresh, data, max_epochs=60, early_stop_patience=_NO_EARLY_STOP
    )

    pool = TapePool(4)
    primer = _model(seed=1, backend=backend)
    train_gcln(
        primer, data, max_epochs=60,
        early_stop_patience=_NO_EARLY_STOP, pool=pool,
    )
    assert pool.stats() == {
        "entries": 1, "max_entries": 4, "hits": 0, "misses": 1
    }

    pooled = _model(seed=9, backend=backend)
    got = train_gcln(
        pooled, data, max_epochs=60,
        early_stop_patience=_NO_EARLY_STOP, pool=pool,
    )
    assert pool.stats()["hits"] == 1
    assert got.epochs == ref.epochs
    assert got.final_loss == ref.final_loss
    assert np.array_equal(pooled.unit_weights.data, fresh.unit_weights.data)
    assert np.array_equal(pooled.and_gates.data, fresh.and_gates.data)
    assert np.array_equal(
        pooled.or_gates_stacked.data, fresh.or_gates_stacked.data
    )


@pytest.mark.parametrize("backend", ["numpy", "fused"])
def test_pooled_restarts_bitwise_identical(backend):
    """Multi-restart adoption matches fresh recording member-by-member."""
    data = _data()
    seeds = (3, 4)
    fresh_models = [_model(seed=s, backend=backend) for s in seeds]
    ref = train_gcln_restarts(
        fresh_models, data, max_epochs=40,
        early_stop_patience=_NO_EARLY_STOP,
    )

    pool = TapePool(4)
    primers = [_model(seed=50 + s, backend=backend) for s in seeds]
    train_gcln_restarts(
        primers, data, max_epochs=40,
        early_stop_patience=_NO_EARLY_STOP, pool=pool,
    )
    pooled_models = [_model(seed=s, backend=backend) for s in seeds]
    got = train_gcln_restarts(
        pooled_models, data, max_epochs=40,
        early_stop_patience=_NO_EARLY_STOP, pool=pool,
    )
    assert pool.stats()["hits"] == 1
    for r, g, fresh, pooled in zip(ref, got, fresh_models, pooled_models):
        assert g.result.final_loss == r.result.final_loss
        assert g.result.epochs == r.result.epochs
        assert np.array_equal(
            pooled.unit_weights.data, fresh.unit_weights.data
        )
        assert np.array_equal(pooled.and_gates.data, fresh.and_gates.data)


def test_tape_pool_lru_counters_and_disabled():
    pool = TapePool(2)
    pool.put("a", 1)
    pool.put("b", 2)
    assert pool.get("a") == 1  # promotes "a" over "b"
    pool.put("c", 3)  # evicts "b", the least recently used
    assert pool.get("b") is None
    assert pool.get("c") == 3
    assert len(pool) == 2
    assert pool.stats() == {
        "entries": 2, "max_entries": 2, "hits": 2, "misses": 1
    }

    disabled = TapePool(0)
    disabled.put("a", 1)
    assert disabled.get("a") is None
    assert disabled.stats()["entries"] == 0


def test_stack_signature_tracks_warm_knobs():
    """Warm knobs key the pool: differing configs must never share tapes."""
    base = _model(seed=1).stack_signature()
    warm = _model(seed=1, warm_start=True).stack_signature()
    period = _model(seed=1, warm_start=True, seed_period=7).stack_signature()
    assert base != warm
    assert warm != period


# -- warm-start semantics ----------------------------------------------------


def test_warm_start_off_restarts_are_bitwise_default():
    """warm_start=False (and seed_period=0) never perturbs training."""
    data = _data()
    seeds = (5, 6)

    def run(**overrides):
        models = [_model(seed=s, **overrides) for s in seeds]
        results = train_gcln_restarts(
            models, data, max_epochs=50,
            early_stop_patience=_NO_EARLY_STOP,
        )
        return models, results

    base_models, base = run()
    off_models, off = run(warm_start=False)
    gated_models, gated = run(warm_start=True, seed_period=0)
    for variant_models, variant in ((off_models, off), (gated_models, gated)):
        for r, g, bm, vm in zip(base, variant, base_models, variant_models):
            assert g.result.final_loss == r.result.final_loss
            assert np.array_equal(vm.unit_weights.data, bm.unit_weights.data)
            assert np.array_equal(vm.and_gates.data, bm.and_gates.data)


def test_seeding_reseeds_worse_members_and_trains_on():
    """The exploit step copies best values in and training still converges."""
    data = _data()
    models = [
        _model(seed=s, warm_start=True, seed_period=10) for s in (11, 12, 13)
    ]
    results = train_gcln_restarts(
        models, data, max_epochs=60, early_stop_patience=_NO_EARLY_STOP
    )
    assert len(results) == 3
    assert all(np.isfinite(r.result.final_loss) for r in results)
    # Masks stay member-specific even after seeding copies values.
    masks = {m.unit_masks.tobytes() for m in models}
    assert len(masks) >= 1  # smoke: masks remain well-formed arrays


def _toy_problem(name: str = "warmtoy") -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + 2; }}
""",
        train_inputs=[{"n": v} for v in range(0, 8)],
        max_degree=1,
        ground_truth={0: ["x == 2 * i"]},
    )


def test_engine_pool_disabled_matches_default():
    """tape_pool_size=0 must not change invariants or epoch counts."""
    outcomes = {}
    for label, size in (("pooled", 8), ("disabled", 0)):
        service = InvariantService(
            InferenceConfig(max_epochs=150, tape_pool_size=size)
        )
        outcomes[label] = service.solve(_toy_problem())
    assert outcomes["pooled"].solved == outcomes["disabled"].solved
    assert (
        outcomes["pooled"].train_epochs == outcomes["disabled"].train_epochs
    )
    assert (
        outcomes["pooled"].invariant() == outcomes["disabled"].invariant()
    )


def test_engine_warm_start_never_spends_more_epochs():
    """Warm solves must finish with <= the cold path's train epochs."""
    outcomes = {}
    for label, flag in (("cold", False), ("warm", True)):
        service = InvariantService(
            InferenceConfig(max_epochs=150, warm_start=flag)
        )
        outcomes[label] = service.solve(_toy_problem())
    assert outcomes["warm"].solved == outcomes["cold"].solved
    assert outcomes["warm"].train_epochs <= outcomes["cold"].train_epochs
    assert outcomes["warm"].invariant() == outcomes["cold"].invariant()


def test_train_epochs_flows_into_solve_result_wire_format():
    service = InvariantService(InferenceConfig(max_epochs=150))
    result = service.solve(_toy_problem())
    assert result.train_epochs > 0
    record = result.to_dict()
    assert record["train_epochs"] == result.train_epochs


# -- backward-segment codegen ------------------------------------------------


def test_backward_codegen_matches_numpy():
    """The generated per-element loop is bitwise-equal to the numpy lines."""
    import math

    rng = np.random.default_rng(0)
    a = rng.normal(size=12) + 3.0
    b = rng.normal(size=12) + 3.0
    t1 = np.empty(12)
    t2 = np.empty(12)
    t3 = np.empty(12)
    lowered = [
        (t1, "multiply", [a, b]),
        (t2, "add", [t1, 0.5]),
        (t3, "sqrt", [t2]),
        (t1, "divide", [t3, b]),
        (t2, "negative", [t1]),
        (t3, "maximum", [t2, -0.25]),
    ]
    source, arrays = backend_numba.codegen_backward(lowered)
    namespace = {"math": math}
    exec(compile(source, "<test-segment>", "exec"), namespace)

    # numpy reference on copies of the scratch buffers
    r1 = a * b
    r2 = r1 + 0.5
    r3 = np.sqrt(r2)
    r1 = r3 / b
    r2 = -r1
    r3 = np.maximum(r2, -0.25)

    namespace["_segment"](12, *[arr.reshape(-1) for arr in arrays])
    assert np.array_equal(t1, r1)
    assert np.array_equal(t2, r2)
    assert np.array_equal(t3, r3)


@pytest.mark.parametrize("backend", ["fused", "numba"])
def test_backward_segments_detected_in_plan(backend):
    """Training on a compiled backend finds fusable backward runs."""
    _skip_unless_available(backend)
    from repro.cln import train as train_mod

    model = _model(seed=2, backend=backend)
    train_gcln(
        model, _data(), max_epochs=5, early_stop_patience=_NO_EARLY_STOP
    )
    stats = train_mod.LAST_TAPE_STATS
    assert stats is not None
    assert stats["fused_bwd_segments"] > 0
    if backend == "numba":
        assert stats["jitted_bwd_segments"] > 0
