"""Tests for the SMT formula IR: evaluation, simplification, printing."""

from fractions import Fraction

import pytest

from repro.errors import FormulaError
from repro.lang.parser import parse_expr
from repro.smt import (
    And,
    Atom,
    FALSE,
    Not,
    Or,
    TRUE,
    expr_to_formula,
    format_formula,
    simplify,
)
from tests.test_polynomial import P


def atom(src: str, op: str = "==") -> Atom:
    return Atom(P(src), op)


def test_atom_evaluation_ops():
    point = {"x": Fraction(2)}
    assert atom("x - 2").evaluate(point)
    assert atom("x - 3", "!=").evaluate(point)
    assert atom("x - 3", "<").evaluate(point)
    assert atom("x - 2", "<=").evaluate(point)
    assert atom("x - 1", ">").evaluate(point)
    assert atom("x - 2", ">=").evaluate(point)


def test_atom_bad_op_rejected():
    with pytest.raises(FormulaError):
        Atom(P("x"), "=>")


def test_connective_evaluation():
    f = And([atom("x"), Or([atom("y"), atom("y - 1")])])
    assert f.evaluate({"x": 0, "y": 1})
    assert not f.evaluate({"x": 1, "y": 1})
    assert Not(atom("x")).evaluate({"x": 5})


def test_empty_connectives():
    assert And([]).evaluate({})
    assert not Or([]).evaluate({})


def test_atom_float_evaluation_tolerance():
    assert atom("x").evaluate_float({"x": 1e-9})
    assert not atom("x").evaluate_float({"x": 1e-3})


def test_expr_to_formula_comparison():
    f = expr_to_formula(parse_expr("x + 1 >= y"))
    assert isinstance(f, Atom) and f.op == ">="
    assert f.poly == P("x + 1 - y")


def test_expr_to_formula_connectives():
    f = expr_to_formula(parse_expr("x == 0 && (y > 1 || !(z <= 2))"))
    assert isinstance(f, And)
    assert f.evaluate({"x": 0, "y": 0, "z": 3})


def test_expr_to_formula_rejects_arithmetic():
    with pytest.raises(FormulaError):
        expr_to_formula(parse_expr("x + 1"))


def test_expr_to_formula_external_calls():
    f = expr_to_formula(parse_expr("gcd(a, b) == gcd(x, y)"))
    assert isinstance(f, Atom)
    assert "gcd(a,b)" in {str(v) for v in f.poly.variables}
    assert f.evaluate({"gcd(a,b)": 3, "gcd(x,y)": 3})


def test_simplify_flattens_and_dedups():
    f = And([And([atom("x"), atom("x")]), atom("y")])
    simplified = simplify(f)
    assert isinstance(simplified, And)
    assert len(simplified.children) == 2


def test_simplify_constants():
    assert simplify(And([TRUE, atom("x")])) == simplify(atom("x"))
    assert simplify(And([FALSE, atom("x")])) == FALSE
    assert simplify(Or([TRUE, atom("x")])) == TRUE
    assert simplify(Not(Not(atom("x")))) == simplify(atom("x"))


def test_simplify_pushes_negation_into_atom():
    result = simplify(Not(atom("x", ">=")))
    assert isinstance(result, Atom) and result.op == "<"


def test_simplify_ground_atom():
    assert simplify(Atom(P("1"), ">=")) == TRUE
    assert simplify(Atom(P("0 - 1"), ">=")) == FALSE


def test_simplify_preserves_inequality_sign():
    result = simplify(Atom(P("y - x*x"), ">="))
    assert isinstance(result, Atom)
    assert result.poly == P("y - x*x")


def test_format_formula():
    f = And([atom("t - 2*a - 1"), atom("n - a*a", ">=")])
    text = format_formula(f)
    assert text == "(t - 2*a - 1 == 0) && (-a^2 + n >= 0)"


def test_formula_operators():
    f = atom("x") & atom("y") | ~atom("z")
    assert f.evaluate({"x": 1, "y": 1, "z": 1})
