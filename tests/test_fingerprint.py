"""Tests for the canonical problem fingerprint (repro.utils.fingerprint)."""

from fractions import Fraction

from repro.bench import nla_problem
from repro.infer import InferenceConfig, Problem, record_problem
from repro.sampling.source import LoopTrace, Observation
from repro.utils.fingerprint import (
    fingerprint_inputs,
    fingerprint_program,
    fingerprint_traces,
    problem_fingerprint,
)


def tiny_problem(name: str = "fp", step: int = 1, max_degree: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 6)],
        max_degree=max_degree,
        ground_truth={0: [f"x == {step} * i"]},
    )


def test_fingerprint_is_deterministic():
    a = problem_fingerprint(tiny_problem(), "gcln", InferenceConfig())
    b = problem_fingerprint(tiny_problem(), "gcln", InferenceConfig())
    assert a == b
    assert len(a) == 40 and int(a, 16) >= 0  # sha1 hex


def test_none_config_means_default_config():
    problem = tiny_problem()
    assert problem_fingerprint(problem) == problem_fingerprint(
        problem, "gcln", InferenceConfig()
    )


def test_fingerprint_covers_program_structure_not_formatting():
    """Two parses of differently-formatted but identical programs key
    the same (the program is keyed by its pretty-print, not bytes)."""
    dense = tiny_problem()
    spread = tiny_problem()
    spread.source = dense.source.replace("i = 0; x = 0;", "i = 0;\n\n  x = 0;")
    assert fingerprint_program(spread.program) == fingerprint_program(
        dense.program
    )
    assert problem_fingerprint(spread) == problem_fingerprint(dense)


def test_fingerprint_sensitive_to_each_component():
    base = problem_fingerprint(tiny_problem(), "gcln", InferenceConfig())
    # program change
    assert problem_fingerprint(tiny_problem(step=2)) != base
    # input change
    changed = tiny_problem()
    changed.train_inputs = [{"n": v} for v in range(0, 7)]
    assert problem_fingerprint(changed) != base
    # solver change
    assert problem_fingerprint(tiny_problem(), "numinv") != base
    # config change
    assert (
        problem_fingerprint(
            tiny_problem(), "gcln", InferenceConfig(max_epochs=7)
        )
        != base
    )
    # problem metadata change (degree feeds term generation)
    assert problem_fingerprint(tiny_problem(max_degree=3)) != base


def test_fingerprint_inputs_order_insensitive_within_rows():
    rows_a = [{"a": 1, "b": 2}]
    rows_b = [{"b": 2, "a": 1}]
    assert fingerprint_inputs(rows_a) == fingerprint_inputs(rows_b)
    assert fingerprint_inputs([{"a": 1}]) != fingerprint_inputs([{"a": 2}])


def test_registry_problems_have_distinct_fingerprints():
    assert problem_fingerprint(nla_problem("ps2")) != problem_fingerprint(
        nla_problem("ps3")
    )


def _traces(check=None):
    return {
        0: LoopTrace(
            train=[
                Observation(state={"x": 1, "y": Fraction(1, 2)}, guard=True),
                Observation(state={"x": 2, "y": Fraction(1)}, guard=False),
            ],
            check=check,
        )
    }


def test_fingerprint_traces_stable_across_state_key_order():
    a = _traces()
    b = {
        0: LoopTrace(
            train=[
                Observation(state={"y": Fraction(1, 2), "x": 1}, guard=True),
                Observation(state={"y": Fraction(1), "x": 2}, guard=False),
            ]
        )
    }
    assert fingerprint_traces(a) == fingerprint_traces(b)
    assert fingerprint_traces(a) == fingerprint_traces(_traces())  # fresh build


def test_fingerprint_traces_collision_resistance():
    base = fingerprint_traces(_traces())
    # value change
    changed = _traces()
    changed[0].train[0].state["x"] = 9
    assert fingerprint_traces(changed) != base
    # guard flip (Observation is frozen; rebuild)
    flipped = _traces()
    first = flipped[0].train[0]
    flipped[0].train[0] = Observation(state=first.state, guard=False)
    assert fingerprint_traces(flipped) != base
    # check=None (reuse train) vs an explicit copy of the train states
    explicit = _traces(check=list(_traces()[0].train))
    assert fingerprint_traces(explicit) != base
    # a state moved from train to check
    moved = _traces()
    moved[0] = LoopTrace(train=moved[0].train[:1], check=moved[0].train[1:])
    assert fingerprint_traces(moved) != base
    # loop index matters
    shifted = {0: LoopTrace(train=[]), 1: _traces()[0]}
    assert fingerprint_traces(shifted) != base


def test_problem_fingerprint_covers_trace_payloads():
    """Trace-only problems key on the recording digest, and a recording
    fingerprints differently from the program it was recorded from."""
    program = nla_problem("ps2")
    recorded = record_problem(program)
    fp = problem_fingerprint(recorded)
    assert fp != problem_fingerprint(program)
    assert fp == problem_fingerprint(record_problem(program))  # deterministic
    tweaked = record_problem(program)
    tweaked.traces[0].train[0].state["x"] += 1
    assert problem_fingerprint(tweaked) != fp
