"""Tests for the canonical problem fingerprint (repro.utils.fingerprint)."""

from repro.bench import nla_problem
from repro.infer import InferenceConfig, Problem
from repro.utils.fingerprint import (
    fingerprint_inputs,
    fingerprint_program,
    problem_fingerprint,
)


def tiny_problem(name: str = "fp", step: int = 1, max_degree: int = 1) -> Problem:
    return Problem(
        name=name,
        source=f"""
program {name};
input n;
assume (n >= 0);
i = 0; x = 0;
while (i < n) {{ i = i + 1; x = x + {step}; }}
""",
        train_inputs=[{"n": v} for v in range(0, 6)],
        max_degree=max_degree,
        ground_truth={0: [f"x == {step} * i"]},
    )


def test_fingerprint_is_deterministic():
    a = problem_fingerprint(tiny_problem(), "gcln", InferenceConfig())
    b = problem_fingerprint(tiny_problem(), "gcln", InferenceConfig())
    assert a == b
    assert len(a) == 40 and int(a, 16) >= 0  # sha1 hex


def test_none_config_means_default_config():
    problem = tiny_problem()
    assert problem_fingerprint(problem) == problem_fingerprint(
        problem, "gcln", InferenceConfig()
    )


def test_fingerprint_covers_program_structure_not_formatting():
    """Two parses of differently-formatted but identical programs key
    the same (the program is keyed by its pretty-print, not bytes)."""
    dense = tiny_problem()
    spread = tiny_problem()
    spread.source = dense.source.replace("i = 0; x = 0;", "i = 0;\n\n  x = 0;")
    assert fingerprint_program(spread.program) == fingerprint_program(
        dense.program
    )
    assert problem_fingerprint(spread) == problem_fingerprint(dense)


def test_fingerprint_sensitive_to_each_component():
    base = problem_fingerprint(tiny_problem(), "gcln", InferenceConfig())
    # program change
    assert problem_fingerprint(tiny_problem(step=2)) != base
    # input change
    changed = tiny_problem()
    changed.train_inputs = [{"n": v} for v in range(0, 7)]
    assert problem_fingerprint(changed) != base
    # solver change
    assert problem_fingerprint(tiny_problem(), "numinv") != base
    # config change
    assert (
        problem_fingerprint(
            tiny_problem(), "gcln", InferenceConfig(max_epochs=7)
        )
        != base
    )
    # problem metadata change (degree feeds term generation)
    assert problem_fingerprint(tiny_problem(max_degree=3)) != base


def test_fingerprint_inputs_order_insensitive_within_rows():
    rows_a = [{"a": 1, "b": 2}]
    rows_b = [{"b": 2, "a": 1}]
    assert fingerprint_inputs(rows_a) == fingerprint_inputs(rows_b)
    assert fingerprint_inputs([{"a": 1}]) != fingerprint_inputs([{"a": 2}])


def test_registry_problems_have_distinct_fingerprints():
    assert problem_fingerprint(nla_problem("ps2")) != problem_fingerprint(
        nla_problem("ps3")
    )
