"""Tests for the training loop internals: loss, schedules, pruning."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.cln.loss import GateSchedule, gcln_loss
from repro.cln.model import GCLN, GCLNConfig
from repro.cln.train import train_gcln, train_units_independently
from repro.errors import TrainingError


def test_gate_schedule_decay_to_floor():
    schedule = GateSchedule(1.0, 0.5, 0.1)
    values = [schedule.step() for _ in range(6)]
    assert values[0] == 1.0
    assert values[-1] == pytest.approx(0.1)
    assert schedule.value == pytest.approx(0.1)


def test_gate_schedule_growth_to_ceiling():
    schedule = GateSchedule(0.001, 10.0, 0.1)
    for _ in range(5):
        schedule.step()
    assert schedule.value == pytest.approx(0.1)


def test_loss_components(rng):
    config = GCLNConfig(n_clauses=2, weight_l1=0.0)
    model = GCLN(3, config, rng)
    X = Tensor(np.zeros((4, 3)))
    # With zero data, residuals are 0 so every unit outputs 1; with all
    # gates fully open, M(x) = 1 and the data term vanishes, leaving
    # exactly the disjunction-gate penalty λ2 * Σ g.
    model.and_gates.data[:] = 1.0
    for g in model.or_gates:
        g.data[:] = 1.0
    n_literals = sum(len(g.data) for g in model.or_gates)
    loss = gcln_loss(model, X, lambda1=1.0, lambda2=1.0)
    assert loss.item() == pytest.approx(n_literals, abs=1e-6)


def test_loss_includes_l1(rng):
    config = GCLNConfig(n_clauses=1, literals_per_clause=1, weight_l1=1.0)
    model = GCLN(3, config, rng)
    X = Tensor(np.zeros((2, 3)))
    base = gcln_loss(model, X, 0.0, 0.0).item()
    # L1 of a unit-normalized vector lies in [1, sqrt(3)].
    n_units = sum(len(g) for g in model.clauses)
    assert base >= n_units * 1.0 - 1e-6
    assert base <= n_units * np.sqrt(3) + 1e-6


def test_train_gcln_reduces_loss(rng):
    # Data with an exact relation x2 = 2*x1.
    xs = np.arange(1, 13, dtype=float)
    data = np.stack([np.ones_like(xs), xs, 2 * xs], axis=1)
    from repro.sampling import normalize_rows

    config = GCLNConfig(n_clauses=4, max_epochs=500, dropout_rate=0.2)
    model = GCLN(3, config, rng, protected_terms=[0])
    result = train_gcln(model, normalize_rows(data), record_history=True)
    assert result.loss_history, "history requested"
    assert result.final_loss < result.loss_history[0]


def test_train_units_independently_runs(rng):
    data = np.random.default_rng(0).normal(size=(10, 4))
    config = GCLNConfig(n_clauses=2, max_epochs=200)
    from repro.cln.model import AtomicKind, AtomicUnit

    units = [
        [AtomicUnit(AtomicKind.GE, np.ones(4, dtype=bool), rng, config)]
        for _ in range(3)
    ]
    model = GCLN(4, config, rng, units=units, kind=AtomicKind.GE)
    result = train_units_independently(model, data, max_epochs=200)
    assert np.isfinite(result.final_loss)


def test_train_rejects_bad_data(rng):
    model = GCLN(3, GCLNConfig(), rng)
    with pytest.raises(TrainingError):
        train_units_independently(model, np.zeros((0, 3)))


def test_pruning_happens_during_training(rng):
    config = GCLNConfig(
        n_clauses=2,
        max_epochs=400,
        prune_interval=50,
        prune_threshold=0.2,
        dropout_rate=0.0,
    )
    xs = np.arange(1, 20, dtype=float)
    data = np.stack([np.ones_like(xs), xs, 2 * xs, xs * 0.0 + 5.0], axis=1)
    from repro.sampling import normalize_rows

    model = GCLN(4, config, rng, protected_terms=[0])
    before = sum(unit.mask.sum() for g in model.clauses for unit in g)
    train_gcln(model, normalize_rows(data))
    after = sum(unit.mask.sum() for g in model.clauses for unit in g)
    assert after <= before
