"""Tests for t-norms, gated t-norms/t-conorms, and activation functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.autodiff import Tensor
from repro.cln.activations import (
    gaussian_equality,
    gaussian_equality_numpy,
    pbqu_ge,
    pbqu_ge_numpy,
    pbqu_le,
    sigmoid_ge,
    sigmoid_ge_numpy,
)
from repro.cln.tnorms import (
    gated_tconorm,
    gated_tnorm,
    godel_tconorm,
    godel_tnorm,
    product_tconorm,
    product_tnorm,
)

unit_floats = st.floats(0.0, 1.0)


def T(*values):
    return Tensor(np.array(values, dtype=float))


def test_product_tnorm_tconorm():
    v = T([0.5, 0.5], [1.0, 0.0])
    np.testing.assert_allclose(product_tnorm(v).data, [0.25, 0.0])
    np.testing.assert_allclose(product_tconorm(v).data, [0.75, 1.0])


def test_godel():
    a, b = T(0.3), T(0.8)
    assert godel_tnorm(a, b).item() == 0.3
    assert godel_tconorm(a, b).item() == 0.8


@given(unit_floats, unit_floats)
def test_gated_tnorm_corner_semantics(x, y):
    """The paper's four-case table for gated t-norms (§4.1)."""
    values = T([x, y])
    assert gated_tnorm(values, T([1.0, 1.0])).item() == pytest.approx(x * y)
    assert gated_tnorm(values, T([1.0, 0.0])).item() == pytest.approx(x)
    assert gated_tnorm(values, T([0.0, 1.0])).item() == pytest.approx(y)
    assert gated_tnorm(values, T([0.0, 0.0])).item() == pytest.approx(1.0)


@given(unit_floats, unit_floats)
def test_gated_tconorm_corner_semantics(x, y):
    values = T([x, y])
    expected_or = 1 - (1 - x) * (1 - y)
    assert gated_tconorm(values, T([1.0, 1.0])).item() == pytest.approx(expected_or)
    assert gated_tconorm(values, T([1.0, 0.0])).item() == pytest.approx(x)
    assert gated_tconorm(values, T([0.0, 1.0])).item() == pytest.approx(y)
    assert gated_tconorm(values, T([0.0, 0.0])).item() == pytest.approx(0.0)


@given(unit_floats, unit_floats, unit_floats, unit_floats)
def test_gated_tnorm_monotone_in_inputs(x1, x2, y, g):
    lo, hi = min(x1, x2), max(x1, x2)
    v_lo = gated_tnorm(T([lo, y]), T([g, 1.0])).item()
    v_hi = gated_tnorm(T([hi, y]), T([g, 1.0])).item()
    assert v_lo <= v_hi + 1e-12


def test_gaussian_equality_peak():
    values = gaussian_equality(T(0.0, 0.5, -0.5), sigma=0.5).data
    assert values[0] == pytest.approx(1.0)
    assert values[1] == values[2] < 1.0


def test_pbqu_asymmetry():
    """PBQU penalizes violations sharply and loose fits gently (Fig. 7b)."""
    act = pbqu_ge(T(-1.0, 0.0, 1.0, 30.0), c1=0.5, c2=50.0).data
    assert act[1] == pytest.approx(1.0)
    assert act[0] < 0.25          # below the bound: strong penalty
    assert act[2] > 0.99          # slightly above: near 1
    assert 0.5 < act[3] < 1.0     # far above: penalized (tightness pressure)


def test_pbqu_le_mirror():
    ge = pbqu_ge(T(2.0), c1=1.0, c2=10.0).item()
    le = pbqu_le(T(-2.0), c1=1.0, c2=10.0).item()
    assert ge == pytest.approx(le)


def test_pbqu_rejects_bad_constants():
    from repro.errors import AutodiffError

    with pytest.raises(AutodiffError):
        pbqu_ge(T(1.0), c1=0.0)


def test_sigmoid_ge_monotone():
    values = sigmoid_ge(T(-3.0, 0.0, 3.0), B=5.0, eps=0.5).data
    assert values[0] < values[1] < values[2]


def test_numpy_twins_match_tensor_versions():
    xs = np.linspace(-3, 3, 13)
    np.testing.assert_allclose(
        pbqu_ge_numpy(xs, 1.0, 50.0), pbqu_ge(Tensor(xs), 1.0, 50.0).data
    )
    np.testing.assert_allclose(
        gaussian_equality_numpy(xs, 0.5), gaussian_equality(Tensor(xs), 0.5).data
    )
    np.testing.assert_allclose(
        sigmoid_ge_numpy(xs, 5.0, 0.5), sigmoid_ge(Tensor(xs), 5.0, 0.5).data
    )


def test_fig2_formula_shape():
    """The CLN of F(x) = (x=1) || (x>=5) || (x>=2 && x<=3) peaks correctly."""
    def model(x: float) -> float:
        xt = Tensor(np.array([x]))
        eq1 = gaussian_equality(xt - 1.0, sigma=0.3)
        ge5 = pbqu_ge(xt - 5.0, c1=0.5, c2=50.0)
        band = pbqu_ge(xt - 2.0, c1=0.5, c2=50.0) * pbqu_le(xt - 3.0, c1=0.5, c2=50.0)
        stacked = Tensor(
            np.array([eq1.data[0], ge5.data[0], band.data[0]])
        )
        return product_tconorm(stacked, axis=0).item()

    assert model(1.0) > 0.9
    assert model(2.5) > 0.9
    assert model(5.0) > 0.9
    assert model(4.2) < 0.6
    assert model(0.0) < 0.6
