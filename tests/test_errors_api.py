"""Tests for the error hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


def test_error_hierarchy():
    assert issubclass(errors.LexError, errors.LangError)
    assert issubclass(errors.ParseError, errors.LangError)
    assert issubclass(errors.InterpError, errors.LangError)
    assert issubclass(errors.FuelExhausted, errors.InterpError)
    for name in (
        "LangError",
        "PolyError",
        "FormulaError",
        "AutodiffError",
        "TrainingError",
        "ExtractionError",
        "CheckError",
        "InferenceError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_lex_error_carries_position():
    err = errors.LexError("bad char", 3, 7)
    assert err.line == 3 and err.column == 7
    assert "line 3" in str(err)


def test_public_api_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__ == "1.1.0"


def test_api_quickstart_types():
    program = repro.parse_program(
        "program p;\ninput n;\nx = 0;\nwhile (x < n) { x = x + 1; }"
    )
    trace = repro.run_program(program, {"n": 3})
    assert trace.final_state["x"] == 3
    problem = repro.Problem(
        name="p", source="program p;\ninput n;\nx = 0;", train_inputs=[{"n": 1}]
    )
    assert problem.program.name == "p"


def test_interp_error_is_catchable_as_repro_error():
    program = repro.parse_program("program p;\ninput n;\nx = y;")
    with pytest.raises(repro.ReproError):
        repro.run_program(program, {"n": 1})
