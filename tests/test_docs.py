"""Doc-drift guards: the docs must keep up with the code.

Two invariants, enforced so knobs can no longer land undocumented:

* every CLI subcommand and every ``--long-flag`` the parser accepts
  appears somewhere in README.md or ``docs/``;
* every ``REPRO_*`` environment variable read anywhere in the source
  tree appears there too;

plus an intra-repo link check over the same markdown set, so the docs
never point at files that moved.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent


def doc_files() -> list[Path]:
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("**/*.md")
    )


def doc_text() -> str:
    return "\n".join(path.read_text() for path in doc_files())


def walk_parser(parser: argparse.ArgumentParser):
    """Yield (kind, name) for every subcommand and long option."""
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                yield "flag", option
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                yield "command", name
                yield from walk_parser(subparser)


def test_docs_exist():
    for path in (
        REPO_ROOT / "README.md",
        REPO_ROOT / "docs" / "architecture.md",
        REPO_ROOT / "docs" / "operations.md",
    ):
        assert path.is_file(), f"missing {path.relative_to(REPO_ROOT)}"


def test_every_cli_flag_is_documented():
    text = doc_text()
    missing = sorted(
        {
            f"{kind} {name}"
            for kind, name in walk_parser(build_parser())
            if name not in text
        }
    )
    assert not missing, (
        "undocumented CLI surface (add to README.md or docs/): "
        + ", ".join(missing)
    )


def test_every_env_var_is_documented():
    pattern = re.compile(r"REPRO_[A-Z][A-Z0-9_]+")
    used: set[str] = set()
    for root in ("src", "benchmarks"):
        for path in (REPO_ROOT / root).glob("**/*.py"):
            used.update(pattern.findall(path.read_text()))
    assert used, "env-var scan found nothing; did the layout move?"
    text = doc_text()
    missing = sorted(var for var in used if var not in text)
    assert not missing, (
        "undocumented REPRO_* env vars (add to docs/operations.md): "
        + ", ".join(missing)
    )


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    broken = []
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{path.relative_to(REPO_ROOT)} links to missing files: {broken}"
    )
